//! Lanczos iteration for extremal eigenpairs of sparse symmetric operators.
//!
//! GRASP needs the bottom-k eigenvectors of normalized Laplacians with `n` in
//! the thousands; CONE's proximity factorization needs top-k eigenpairs of a
//! sparse PSD proximity operator. Dense `O(n³)` eigendecomposition would
//! dominate runtime and memory (defeating the scalability experiments of
//! Figures 11–14), so extremal spectra come from this Lanczos implementation
//! with **full reorthogonalization** — simple, numerically robust, and the
//! cost `O(k² n + k · nnz)` is negligible at the paper's `k ≤ 20..128`.

use crate::dense::DenseMatrix;
use crate::eigen::symmetric_eigen;
use crate::vec_ops;
use crate::{LinalgError, LinearOp};
use graphalign_par as par;
use graphalign_par::telemetry::{self, Convergence, StopReason};
use rand::prelude::*;

/// Subtracts from `w` its projections onto every basis vector.
///
/// Classical Gram–Schmidt: all inner products are taken against the *same*
/// incoming `w`, so they are independent and run in parallel. Callers apply
/// this twice (CGS2), which matches the numerical robustness of the modified
/// variant while exposing `basis.len()` parallel dot products per sweep.
fn orthogonalize_against(basis: &[Vec<f64>], w: &mut [f64]) {
    if basis.is_empty() {
        return;
    }
    let n = w.len();
    let projs = {
        let w_ro: &[f64] = w;
        par::map_collect(basis.len(), n, |i| vec_ops::dot(w_ro, &basis[i]))
    };
    par::for_each_chunk_mut(w, basis.len(), |_, range, chunk| {
        for (b, &proj) in basis.iter().zip(&projs) {
            vec_ops::axpy(-proj, &b[range.clone()], chunk);
        }
    });
}

/// Which end of the spectrum to extract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Which {
    /// Algebraically largest eigenvalues.
    Largest,
    /// Algebraically smallest eigenvalues.
    Smallest,
}

/// A set of extremal eigenpairs.
#[derive(Debug, Clone)]
pub struct LanczosResult {
    /// Eigenvalues — ascending for [`Which::Smallest`], descending for
    /// [`Which::Largest`].
    pub values: Vec<f64>,
    /// Matching eigenvectors as columns of an `n × k` matrix.
    pub vectors: DenseMatrix,
    /// How the Krylov iteration stopped: `max_iter` when it ran to the
    /// subspace cap (the normal case — there is no residual test), or
    /// `breakdown` when the space was exhausted early (exact invariant
    /// subspace). Both count as converged; also reported to the telemetry
    /// sink.
    pub convergence: Convergence,
}

/// Computes `k` extremal eigenpairs of the symmetric operator `op`.
///
/// `max_dim` bounds the Krylov subspace (defaults callers usually pass
/// `4k + 20`, clamped to `n`). The Krylov basis is kept fully orthonormal
/// (classical Gram–Schmidt against all previous vectors, performed twice),
/// which is what makes small-k extraction reliable without restarts.
///
/// # Errors
/// * [`LinalgError::NotFinite`] if the operator produces non-finite values.
/// * [`LinalgError::Interrupted`] when the cell execution budget expires
///   between Krylov steps.
/// * Propagates tridiagonal-solver failures.
///
/// # Panics
/// Panics if `k == 0` or `k > op.dim()`.
pub fn lanczos(
    op: &dyn LinearOp,
    k: usize,
    which: Which,
    max_dim: usize,
    seed: u64,
) -> Result<LanczosResult, LinalgError> {
    let n = op.dim();
    assert!(k > 0, "lanczos: k must be positive");
    assert!(k <= n, "lanczos: k = {k} exceeds dimension {n}");
    let m = max_dim.clamp(k.saturating_mul(2).min(n), n).max(k);

    let mut rng = StdRng::seed_from_u64(seed);
    // Krylov basis vectors.
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut alpha: Vec<f64> = Vec::with_capacity(m);
    let mut beta: Vec<f64> = Vec::with_capacity(m);

    let mut q = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect::<Vec<f64>>();
    if vec_ops::normalize(&mut q) == 0.0 {
        return Err(LinalgError::NotFinite { routine: "lanczos" });
    }
    let mut w = vec![0.0; n];
    let mut last_beta = 0.0;
    let mut stop = StopReason::MaxIter;
    for j in 0..m {
        crate::check_budget("lanczos", j)?;
        basis.push(q.clone());
        op.apply(&q, &mut w);
        if !vec_ops::all_finite(&w) {
            return Err(LinalgError::NotFinite { routine: "lanczos" });
        }
        let a_j = vec_ops::dot(&w, &q);
        alpha.push(a_j);
        // w ← w − α_j q_j − β_{j−1} q_{j−1}
        vec_ops::axpy(-a_j, &q, &mut w);
        if j > 0 {
            let b_prev = beta[j - 1];
            vec_ops::axpy(-b_prev, &basis[j - 1], &mut w);
        }
        // Full reorthogonalization (twice for stability).
        orthogonalize_against(&basis, &mut w);
        orthogonalize_against(&basis, &mut w);
        let b_j = vec_ops::norm2(&w);
        last_beta = b_j;
        if j + 1 == m {
            break;
        }
        if b_j < 1e-12 {
            // Invariant subspace found: restart with a random vector
            // orthogonal to the current basis (handles disconnected graphs,
            // whose Laplacians have multiplicities).
            let mut fresh: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
            orthogonalize_against(&basis, &mut fresh);
            orthogonalize_against(&basis, &mut fresh);
            if vec_ops::normalize(&mut fresh) == 0.0 {
                // Space exhausted (m ≥ effective dimension); stop early.
                beta.push(0.0);
                stop = StopReason::Breakdown;
                last_beta = 0.0;
                break;
            }
            beta.push(0.0);
            q = fresh;
        } else {
            beta.push(b_j);
            // Swap instead of cloning: `w` is fully overwritten by
            // `op.apply` at the top of the next step, so the old `q`
            // buffer can serve as its storage.
            std::mem::swap(&mut q, &mut w);
            vec_ops::scale(1.0 / b_j, &mut q);
        }
    }

    // Solve the projected tridiagonal problem T = tridiag(beta, alpha, beta).
    let dim = basis.len();
    let mut t = DenseMatrix::zeros(dim, dim);
    for i in 0..dim {
        t.set(i, i, alpha[i]);
        if i + 1 < dim {
            let b = beta.get(i).copied().unwrap_or(0.0);
            t.set(i, i + 1, b);
            t.set(i + 1, i, b);
        }
    }
    let eig = symmetric_eigen(&t)?;

    // Ritz pairs: pick k from the requested end.
    let indices: Vec<usize> = match which {
        Which::Smallest => (0..k.min(dim)).collect(),
        Which::Largest => (0..k.min(dim)).map(|i| dim - 1 - i).collect(),
    };
    let values: Vec<f64> = indices.iter().map(|&src| eig.values[src]).collect();
    // Ritz vector j = Σ_i basis[i] * y[i][j], assembled in parallel over
    // output rows.
    let coefs: Vec<Vec<f64>> =
        indices.iter().map(|&src| (0..dim).map(|i| eig.vectors.get(i, src)).collect()).collect();
    let mut vectors = DenseMatrix::par_from_fn(n, indices.len(), |row, out_j| {
        let mut acc = 0.0;
        for (i, b) in basis.iter().enumerate() {
            acc += coefs[out_j][i] * b[row];
        }
        acc
    });
    // Normalize Ritz vectors (they are orthonormal up to rounding).
    for j in 0..vectors.cols() {
        let mut col = vectors.col(j);
        vec_ops::normalize(&mut col);
        for (i, &v) in col.iter().enumerate() {
            vectors.set(i, j, v);
        }
    }
    let convergence = Convergence { iterations: dim, residual: last_beta, converged: true, stop };
    telemetry::record("lanczos", convergence);
    Ok(LanczosResult { values, vectors, convergence })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CsrMatrix;

    fn diag_csr(d: &[f64]) -> CsrMatrix {
        let triplets: Vec<(usize, usize, f64)> =
            d.iter().enumerate().map(|(i, &v)| (i, i, v)).collect();
        CsrMatrix::from_triplets(d.len(), d.len(), &triplets)
    }

    #[test]
    fn diagonal_extremes() {
        let d: Vec<f64> = (1..=30).map(|i| i as f64).collect();
        let m = diag_csr(&d);
        let top = lanczos(&m, 3, Which::Largest, 30, 42).unwrap();
        assert!((top.values[0] - 30.0).abs() < 1e-8);
        assert!((top.values[1] - 29.0).abs() < 1e-8);
        assert!((top.values[2] - 28.0).abs() < 1e-8);
        let bottom = lanczos(&m, 3, Which::Smallest, 30, 42).unwrap();
        assert!((bottom.values[0] - 1.0).abs() < 1e-8);
        assert!((bottom.values[1] - 2.0).abs() < 1e-8);
    }

    #[test]
    fn eigenvectors_satisfy_definition() {
        let d: Vec<f64> = (1..=20).map(|i| (i * i) as f64).collect();
        let m = diag_csr(&d);
        let res = lanczos(&m, 2, Which::Largest, 20, 1).unwrap();
        for j in 0..2 {
            let v = res.vectors.col(j);
            let mv = m.mul_vec(&v);
            for i in 0..20 {
                assert!(
                    (mv[i] - res.values[j] * v[i]).abs() < 1e-6,
                    "residual too large at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn matches_dense_eigen_on_random_sparse_symmetric() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(9);
        let n = 40;
        let mut triplets = Vec::new();
        for i in 0..n {
            for j in 0..=i {
                if rng.random_range(0.0..1.0) < 0.2 {
                    let v: f64 = rng.random_range(-1.0..1.0);
                    triplets.push((i, j, v));
                    if i != j {
                        triplets.push((j, i, v));
                    }
                }
            }
        }
        let m = CsrMatrix::from_triplets(n, n, &triplets);
        let dense_eig = symmetric_eigen(&m.to_dense()).unwrap();
        let res = lanczos(&m, 4, Which::Smallest, n, 17).unwrap();
        for j in 0..4 {
            assert!(
                (res.values[j] - dense_eig.values[j]).abs() < 1e-7,
                "eigenvalue {j}: lanczos {} vs dense {}",
                res.values[j],
                dense_eig.values[j]
            );
        }
    }

    #[test]
    fn handles_multiplicity_via_restart() {
        // Identity has a single eigenvalue with full multiplicity; the first
        // Krylov step breaks down immediately.
        let m = diag_csr(&[1.0; 10]);
        let res = lanczos(&m, 3, Which::Largest, 10, 5).unwrap();
        for v in &res.values {
            assert!((v - 1.0).abs() < 1e-9);
        }
        // Vectors remain orthonormal.
        let gram = res.vectors.tr_matmul(&res.vectors);
        assert!(gram.sub(&DenseMatrix::identity(3)).max_abs() < 1e-8);
    }

    #[test]
    fn convergence_reports_subspace_cap_as_normal_stop() {
        let d: Vec<f64> = (1..=30).map(|i| i as f64).collect();
        let _g = telemetry::install(false);
        let res = lanczos(&diag_csr(&d), 3, Which::Largest, 10, 42).unwrap();
        assert!(res.convergence.converged, "running to the cap is the normal stop");
        assert_eq!(res.convergence.stop, telemetry::StopReason::MaxIter);
        assert_eq!(res.convergence.iterations, 10);
        assert!(res.convergence.residual.is_finite());
        let t = telemetry::drain();
        // One lanczos event plus the tql2 event from the projected solve.
        assert!(t.events.iter().any(|e| e.routine == "lanczos"));
        assert!(t.events.iter().any(|e| e.routine == "tql2"));
    }

    #[test]
    fn expired_budget_interrupts() {
        let m = diag_csr(&[1.0, 2.0, 3.0]);
        let _g = graphalign_par::budget::install(Some(std::time::Duration::ZERO));
        let err = lanczos(&m, 2, Which::Largest, 3, 0).unwrap_err();
        assert!(err.is_interrupted(), "got {err:?}");
    }

    #[test]
    #[should_panic(expected = "exceeds dimension")]
    fn k_larger_than_n_panics() {
        let m = diag_csr(&[1.0, 2.0]);
        let _ = lanczos(&m, 3, Which::Largest, 2, 0);
    }
}
