//! Thin singular value decomposition and pseudo-inverse.
//!
//! For a matrix `A` of shape `m × n` (assume w.l.o.g. `m ≥ n`; the other case
//! is handled by transposition) we form the Gram matrix `G = AᵀA`, compute its
//! symmetric eigendecomposition `G = V Λ Vᵀ` with [`crate::eigen`], and read
//! off `σᵢ = √λᵢ`, `U = A V Σ⁻¹`. Columns with numerically zero singular
//! values get left singular vectors completed arbitrarily but orthonormally.
//!
//! This "Gram trick" halves the attainable relative accuracy for the smallest
//! singular values (≈√ε instead of ε), which is irrelevant for the uses in
//! this workspace: REGAL's Nyström pseudo-inverse, CONE's Procrustes rotation
//! and LREA's factor compression all only consume the dominant part of the
//! spectrum, and all three clamp small singular values anyway.

use crate::dense::DenseMatrix;
use crate::eigen::symmetric_eigen;
use crate::qr::thin_qr;
use crate::LinalgError;

/// A thin SVD `A = U diag(σ) Vᵀ` with `U: m × k`, `V: n × k`,
/// `k = min(m, n)`, singular values in *descending* order.
#[derive(Debug, Clone)]
pub struct ThinSvd {
    /// Left singular vectors (columns).
    pub u: DenseMatrix,
    /// Singular values, descending.
    pub sigma: Vec<f64>,
    /// Right singular vectors (columns).
    pub v: DenseMatrix,
}

impl ThinSvd {
    /// Number of singular values above `tol * σ_max` (numerical rank).
    pub fn rank(&self, tol: f64) -> usize {
        let smax = self.sigma.first().copied().unwrap_or(0.0);
        self.sigma.iter().filter(|&&s| s > tol * smax).count()
    }

    /// Reconstructs `U diag(σ) Vᵀ`.
    pub fn reconstruct(&self) -> DenseMatrix {
        let k = self.sigma.len();
        let mut us = self.u.clone();
        for j in 0..k {
            for i in 0..us.rows() {
                us.set(i, j, us.get(i, j) * self.sigma[j]);
            }
        }
        us.matmul_tr(&self.v)
    }
}

/// Computes the thin SVD of `a`.
///
/// # Errors
/// Propagates failures from the symmetric eigensolver, and rejects non-finite
/// input with [`LinalgError::NotFinite`].
pub fn thin_svd(a: &DenseMatrix) -> Result<ThinSvd, LinalgError> {
    if !a.all_finite() {
        return Err(LinalgError::NotFinite { routine: "thin_svd" });
    }
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Ok(ThinSvd {
            u: DenseMatrix::zeros(m, 0),
            sigma: Vec::new(),
            v: DenseMatrix::zeros(n, 0),
        });
    }
    if m < n {
        // SVD of Aᵀ, then swap factors.
        let s = thin_svd(&a.transpose())?;
        return Ok(ThinSvd { u: s.v, sigma: s.sigma, v: s.u });
    }
    // QR preconditioning: A = Q R with R (n × n); SVD of R is cheap and the
    // Gram matrix of R is better conditioned to form than AᵀA directly for
    // very tall A.
    let qr = thin_qr(a);
    let r = &qr.r; // n × n
    let gram = r.tr_matmul(r); // RᵀR, symmetric PSD
    let eig = symmetric_eigen(&gram)?;
    // Eigenvalues ascending -> take them descending.
    let k = n;
    let mut sigma = Vec::with_capacity(k);
    let mut v = DenseMatrix::zeros(n, k);
    for out_j in 0..k {
        let src = k - 1 - out_j;
        sigma.push(eig.values[src].max(0.0).sqrt());
        for i in 0..n {
            v.set(i, out_j, eig.vectors.get(i, src));
        }
    }
    // U = Q * (R V Σ⁻¹); columns with σ≈0 completed via QR of a perturbation.
    let rv = r.matmul(&v);
    let smax = sigma.first().copied().unwrap_or(0.0);
    let tol = smax * 1e-13;
    let mut u_small = DenseMatrix::zeros(n, k);
    for j in 0..k {
        if sigma[j] > tol && sigma[j] > 0.0 {
            for i in 0..n {
                u_small.set(i, j, rv.get(i, j) / sigma[j]);
            }
        }
    }
    // Orthonormal completion for null columns: re-orthonormalize u_small.
    complete_orthonormal(&mut u_small, &sigma, tol);
    let u = qr.q.matmul(&u_small);
    Ok(ThinSvd { u, sigma, v })
}

/// Fills columns of `u` whose singular value is ≤ `tol` with vectors
/// orthonormal to the rest (Gram–Schmidt against all other columns).
fn complete_orthonormal(u: &mut DenseMatrix, sigma: &[f64], tol: f64) {
    let n = u.rows();
    let k = u.cols();
    for j in 0..k {
        if sigma[j] > tol && sigma[j] > 0.0 {
            continue;
        }
        // Try basis vectors until one survives orthogonalization.
        'candidates: for cand in 0..n {
            let mut v = vec![0.0; n];
            v[cand] = 1.0;
            for other in 0..k {
                if other == j {
                    continue;
                }
                let col: Vec<f64> = (0..n).map(|i| u.get(i, other)).collect();
                let proj = crate::vec_ops::dot(&v, &col);
                crate::vec_ops::axpy(-proj, &col, &mut v);
            }
            if crate::vec_ops::normalize(&mut v) > 1e-8 {
                for (i, &vi) in v.iter().enumerate() {
                    u.set(i, j, vi);
                }
                break 'candidates;
            }
        }
    }
}

/// Moore–Penrose pseudo-inverse via the thin SVD, with singular values below
/// `rcond * σ_max` treated as zero.
///
/// Because the SVD uses the Gram trick, singular values that are exactly zero
/// surface as values on the order of `√ε · σ_max ≈ 1e-8 · σ_max`; pass
/// `rcond ≥ 1e-7` (REGAL and CONE use `1e-6`) so they are correctly truncated.
///
/// # Errors
/// Propagates SVD failures.
pub fn pinv(a: &DenseMatrix, rcond: f64) -> Result<DenseMatrix, LinalgError> {
    let svd = thin_svd(a)?;
    let smax = svd.sigma.first().copied().unwrap_or(0.0);
    let cutoff = rcond * smax;
    let k = svd.sigma.len();
    // pinv(A) = V Σ⁺ Uᵀ  (n × m)
    let mut vs = svd.v.clone();
    for j in 0..k {
        let s = svd.sigma[j];
        let inv = if s > cutoff && s > 0.0 { 1.0 / s } else { 0.0 };
        for i in 0..vs.rows() {
            vs.set(i, j, vs.get(i, j) * inv);
        }
    }
    Ok(vs.matmul_tr(&svd.u))
}

/// Solves the orthogonal Procrustes problem `min_Q ‖A Q − B‖_F` over
/// orthogonal `Q`, returning `Q = U Vᵀ` where `AᵀB = U Σ Vᵀ`.
///
/// Used by CONE's embedding-space alignment step.
///
/// # Errors
/// Propagates SVD failures.
///
/// # Panics
/// Panics if `A` and `B` have different shapes.
pub fn procrustes(a: &DenseMatrix, b: &DenseMatrix) -> Result<DenseMatrix, LinalgError> {
    assert_eq!(a.shape(), b.shape(), "procrustes: shape mismatch");
    let m = a.tr_matmul(b); // d × d
    let svd = thin_svd(&m)?;
    Ok(svd.u.matmul_tr(&svd.v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn svd_of_diagonal() {
        let a = DenseMatrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0], &[0.0, 0.0]]);
        let s = thin_svd(&a).unwrap();
        assert!((s.sigma[0] - 4.0).abs() < 1e-10);
        assert!((s.sigma[1] - 3.0).abs() < 1e-10);
        assert!(s.reconstruct().sub(&a).max_abs() < 1e-10);
    }

    #[test]
    fn svd_reconstructs_random_tall_and_wide() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(3);
        for &(m, n) in &[(8, 5), (5, 8), (6, 6), (1, 4), (4, 1)] {
            let a = DenseMatrix::from_fn(m, n, |_, _| rng.random_range(-2.0..2.0));
            let s = thin_svd(&a).unwrap();
            let err = s.reconstruct().sub(&a).max_abs();
            assert!(err < 1e-8, "reconstruction error {err} for {m}x{n}");
            // U and V have orthonormal columns.
            let k = m.min(n);
            assert!(s.u.tr_matmul(&s.u).sub(&DenseMatrix::identity(k)).max_abs() < 1e-8);
            assert!(s.v.tr_matmul(&s.v).sub(&DenseMatrix::identity(k)).max_abs() < 1e-8);
            // Descending.
            for w in s.sigma.windows(2) {
                assert!(w[0] >= w[1] - 1e-12);
            }
        }
    }

    #[test]
    fn rank_detection_on_rank_deficient_matrix() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let s = thin_svd(&a).unwrap();
        assert_eq!(s.rank(1e-10), 1);
        assert!(s.reconstruct().sub(&a).max_abs() < 1e-9);
    }

    #[test]
    fn pinv_satisfies_moore_penrose_identity() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let p = pinv(&a, 1e-12).unwrap();
        // A * A⁺ * A = A
        let apa = a.matmul(&p).matmul(&a);
        assert!(apa.sub(&a).max_abs() < 1e-9);
        // A⁺ * A * A⁺ = A⁺
        let pap = p.matmul(&a).matmul(&p);
        assert!(pap.sub(&p).max_abs() < 1e-9);
    }

    #[test]
    fn pinv_of_singular_matrix_is_finite() {
        let a = DenseMatrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let p = pinv(&a, 1e-6).unwrap();
        assert!(p.all_finite());
        // pinv of rank-1 [[1,1],[1,1]] is [[.25,.25],[.25,.25]]
        assert!((p.get(0, 0) - 0.25).abs() < 1e-10);
    }

    #[test]
    fn procrustes_recovers_rotation() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(5);
        // Random orthogonal Q via QR.
        let raw = DenseMatrix::from_fn(4, 4, |_, _| rng.random_range(-1.0..1.0));
        let q = crate::qr::thin_qr(&raw).q;
        let a = DenseMatrix::from_fn(20, 4, |_, _| rng.random_range(-1.0..1.0));
        let b = a.matmul(&q);
        let q_hat = procrustes(&a, &b).unwrap();
        assert!(q_hat.sub(&q).max_abs() < 1e-8, "Procrustes failed to recover rotation");
    }

    #[test]
    fn empty_input() {
        let s = thin_svd(&DenseMatrix::zeros(0, 3)).unwrap();
        assert!(s.sigma.is_empty());
    }

    #[test]
    fn rejects_non_finite() {
        let a = DenseMatrix::from_rows(&[&[f64::INFINITY]]);
        assert!(matches!(thin_svd(&a), Err(LinalgError::NotFinite { .. })));
    }
}
