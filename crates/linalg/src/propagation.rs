//! CSR-only factored feature propagation for the XL ("never densify") tier.
//!
//! Every iterate is a tall `n × k` factor updated by an SpMM against the CSR
//! adjacency — `X ← α Â X + (1 − α) X₀` — so the peak footprint is three
//! `n × k` buffers plus the graph itself, never an `n × n` object. This is the
//! NSD-style propagation that lets structural features diffuse over the graph
//! while staying in the factored regime end to end; the result feeds a
//! [`crate::LowRankSim`] at the assignment boundary.

use crate::dense::DenseMatrix;
use crate::sparse::CsrMatrix;
use crate::LinalgError;
use graphalign_par::telemetry::{self, Convergence};

/// Configuration for [`propagate_features`].
#[derive(Debug, Clone, Copy)]
pub struct PropagationParams {
    /// Maximum propagation sweeps.
    pub iters: usize,
    /// Mixing weight on the propagated term (`1 − alpha` stays on `X₀`);
    /// clamped into `[0, 1]`.
    pub alpha: f64,
    /// Early-stop tolerance on the max-abs change between sweeps.
    pub tol: f64,
}

impl Default for PropagationParams {
    fn default() -> Self {
        Self { iters: 20, alpha: 0.85, tol: 1e-9 }
    }
}

/// Propagates the feature factor `x0` (`n × k`) over the operator `adj`
/// (typically the symmetrically normalized adjacency), returning the fixed
/// tall factor. Memory stays at `O(n·k)`: the two iterates are double-buffered
/// and the SpMM streams the CSR rows.
///
/// # Errors
/// [`LinalgError::NotFinite`] if an iterate blows up (possible when `adj` has
/// spectral radius above 1 and `alpha` is close to 1);
/// [`LinalgError::Interrupted`] when the cell budget expires between sweeps.
///
/// # Panics
/// Panics when `adj` is not square or its dimension does not match `x0`.
pub fn propagate_features(
    adj: &CsrMatrix,
    x0: &DenseMatrix,
    params: &PropagationParams,
) -> Result<DenseMatrix, LinalgError> {
    let n = x0.rows();
    assert_eq!(adj.rows(), adj.cols(), "propagate_features: operator must be square");
    assert_eq!(adj.rows(), n, "propagate_features: operator/factor dimension mismatch");
    let routine = "propagation";
    let alpha = params.alpha.clamp(0.0, 1.0);
    let mut x = x0.clone();
    let mut ax = DenseMatrix::zeros(n, x0.cols());
    let mut iterations = 0;
    let mut last_residual = 0.0;
    let mut hit_tol = false;
    for it in 0..params.iters {
        crate::check_budget(routine, it)?;
        iterations = it + 1;
        adj.mul_dense_into(&x, &mut ax);
        telemetry::count_matmul();
        // ax ← α·(Â x) + (1 − α)·x₀, then measure the sweep delta against the
        // previous iterate before swapping buffers. The residual fold is
        // sequential on purpose: bit-identical at every thread count.
        ax.scale_inplace(alpha);
        ax.add_scaled(1.0 - alpha, x0);
        let mut delta: f64 = 0.0;
        for (&new, &old) in ax.as_slice().iter().zip(x.as_slice()) {
            let d = (new - old).abs();
            if d > delta {
                delta = d;
            }
        }
        std::mem::swap(&mut x, &mut ax);
        if !x.all_finite() {
            return Err(LinalgError::NotFinite { routine });
        }
        last_residual = delta;
        telemetry::record_residual(routine, delta);
        if delta < params.tol {
            hit_tol = true;
            break;
        }
    }
    let convergence = if hit_tol {
        Convergence::tolerance(iterations, last_residual)
    } else {
        Convergence::max_iter(iterations, last_residual)
    };
    telemetry::record(routine, convergence);
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_adjacency(n: usize) -> CsrMatrix {
        let mut triplets = Vec::new();
        for i in 0..n - 1 {
            // Symmetrically normalized path graph (degrees 1 or 2).
            let du: f64 = if i == 0 { 1.0 } else { 2.0 };
            let dv: f64 = if i + 1 == n - 1 { 1.0 } else { 2.0 };
            let w = 1.0 / (du * dv).sqrt();
            triplets.push((i, i + 1, w));
            triplets.push((i + 1, i, w));
        }
        CsrMatrix::from_triplets(n, n, &triplets)
    }

    #[test]
    fn propagation_smooths_features_toward_neighbors() {
        let n = 8;
        let adj = path_adjacency(n);
        // A single indicator spike at node 0 should diffuse mass down the path.
        let x0 = DenseMatrix::from_fn(n, 1, |i, _| if i == 0 { 1.0 } else { 0.0 });
        let params = PropagationParams { iters: 30, alpha: 0.85, tol: 0.0 };
        let x = propagate_features(&adj, &x0, &params).unwrap();
        assert!(x.all_finite());
        assert!(x.get(0, 0) > x.get(4, 0), "source keeps the most mass");
        assert!(x.get(1, 0) > 0.0, "mass reaches the neighbor");
        assert!(x.get(4, 0) > 0.0, "mass reaches distant nodes");
    }

    #[test]
    fn alpha_zero_returns_the_input_factor() {
        let n = 5;
        let adj = path_adjacency(n);
        let x0 = DenseMatrix::from_fn(n, 3, |i, j| (i * 3 + j) as f64);
        let params = PropagationParams { iters: 10, alpha: 0.0, tol: 0.0 };
        let x = propagate_features(&adj, &x0, &params).unwrap();
        assert!(x.sub(&x0).max_abs() == 0.0, "alpha=0 is the identity map");
    }

    #[test]
    fn early_stop_reports_tolerance_convergence() {
        let n = 6;
        let adj = path_adjacency(n);
        let x0 = DenseMatrix::from_fn(n, 2, |i, j| ((i + j) % 3) as f64);
        let _g = telemetry::install(false);
        let params = PropagationParams { iters: 500, alpha: 0.5, tol: 1e-12 };
        let x = propagate_features(&adj, &x0, &params).unwrap();
        assert!(x.all_finite());
        let t = telemetry::drain();
        let ev = t.events.iter().find(|e| e.routine == "propagation").expect("event");
        assert!(ev.convergence.converged, "tight fixed point should hit the tolerance");
        assert!(ev.convergence.iterations < 500);
    }

    #[test]
    fn expired_budget_interrupts_propagation() {
        let n = 4;
        let adj = path_adjacency(n);
        let x0 = DenseMatrix::filled(n, 2, 1.0);
        let _g = graphalign_par::budget::install(Some(std::time::Duration::ZERO));
        let err = propagate_features(&adj, &x0, &PropagationParams::default()).unwrap_err();
        assert!(err.is_interrupted(), "got {err:?}");
    }

    #[test]
    fn propagation_is_deterministic_across_thread_counts() {
        let n = 64;
        let adj = path_adjacency(n);
        let x0 = DenseMatrix::from_fn(n, 4, |i, j| ((i * 7 + j * 13) % 11) as f64 / 11.0);
        let params = PropagationParams { iters: 25, alpha: 0.9, tol: 0.0 };
        graphalign_par::set_max_threads(1);
        let a = propagate_features(&adj, &x0, &params).unwrap();
        graphalign_par::set_max_threads(8);
        let b = propagate_features(&adj, &x0, &params).unwrap();
        graphalign_par::set_max_threads(0);
        assert_eq!(a.as_slice(), b.as_slice(), "bit-identical at any thread count");
    }
}
