//! Factored (low-rank) similarity kernels: row evaluation, row-argmax and
//! row-wise top-k over an implicit `n × m` matrix held as a pair of factor
//! matrices, without ever materializing the product.
//!
//! The embedding-based aligners (REGAL, CONE, GRASP, LREA) compute rank-`d`
//! factors `Ya` (`n × d`) and `Yb` (`m × d`) and then compare rows pairwise;
//! the entry `(i, j)` of the implicit similarity matrix is a fixed kernel of
//! `Ya.row(i)` and `Yb.row(j)` (plus an optional per-row offset). Routing the
//! factors to the assignment layer instead of the `n × m` product is what
//! keeps those methods subquadratic in memory (fig13/fig14 scale).
//!
//! Every evaluation goes through the same `vec_ops` microkernels as the dense
//! constructors used before this module existed, so row scans here are
//! bit-identical to the corresponding rows of the densified matrix:
//!
//! * [`LowRankKernel::Dot`] matches `DenseMatrix::matmul_tr`, whose per-element
//!   ascending shared-index summation is documented to equal
//!   [`vec_ops::dot`] bit for bit.
//! * [`LowRankKernel::NegSqDist`] and [`LowRankKernel::ExpNegSqDist`] evaluate
//!   the exact closure the dense constructors pass to
//!   `DenseMatrix::par_from_fn` (`-dist2_sq` and `(-dist2_sq).exp()`).

use crate::dense::DenseMatrix;
use crate::vec_ops;
use crate::workspace::Workspace;

/// The pairwise kernel an implicit factored similarity applies to a row of
/// `Ya` and a row of `Yb`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LowRankKernel {
    /// `ya_i · yb_j` — an implicit `Ya · Ybᵀ` product (LREA).
    Dot,
    /// `-‖ya_i - yb_j‖²` — negated squared Euclidean distance (GRASP).
    NegSqDist,
    /// `exp(-‖ya_i - yb_j‖²)` — the embedding similarity of REGAL and CONE.
    ExpNegSqDist,
}

impl LowRankKernel {
    /// Stable lower-snake-case name used in JSON and docs.
    pub fn as_str(self) -> &'static str {
        match self {
            LowRankKernel::Dot => "dot",
            LowRankKernel::NegSqDist => "neg_sq_dist",
            LowRankKernel::ExpNegSqDist => "exp_neg_sq_dist",
        }
    }

    /// Whether larger kernel values correspond to smaller factor-row
    /// distances, i.e. whether a nearest-neighbor structure over the rows of
    /// `Yb` (k-d tree) can answer row-argmax queries for this kernel.
    pub fn is_distance_kernel(self) -> bool {
        matches!(self, LowRankKernel::NegSqDist | LowRankKernel::ExpNegSqDist)
    }

    fn eval(self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            LowRankKernel::Dot => vec_ops::dot(a, b),
            LowRankKernel::NegSqDist => -vec_ops::dist2_sq(a, b),
            LowRankKernel::ExpNegSqDist => (-vec_ops::dist2_sq(a, b)).exp(),
        }
    }
}

/// An implicit `n × m` similarity matrix held in factored form: entry
/// `(i, j)` is `kernel(ya.row(i), yb.row(j)) + row_offsets[i]` (offsets
/// default to zero and never change within-row argmax results).
#[derive(Debug, Clone, PartialEq)]
pub struct LowRankSim {
    ya: DenseMatrix,
    yb: DenseMatrix,
    kernel: LowRankKernel,
    row_offsets: Option<Vec<f64>>,
}

impl LowRankSim {
    /// Wraps factor matrices with `ya.cols() == yb.cols()` shared rank.
    ///
    /// # Panics
    /// Panics when the factor ranks differ.
    pub fn new(ya: DenseMatrix, yb: DenseMatrix, kernel: LowRankKernel) -> Self {
        assert_eq!(ya.cols(), yb.cols(), "LowRankSim: factor ranks differ");
        Self { ya, yb, kernel, row_offsets: None }
    }

    /// Adds a per-row additive offset (length `rows()`); entry `(i, j)`
    /// becomes `kernel(i, j) + offsets[i]`.
    ///
    /// # Panics
    /// Panics when `offsets.len() != rows()`.
    pub fn with_row_offsets(mut self, offsets: Vec<f64>) -> Self {
        assert_eq!(offsets.len(), self.rows(), "LowRankSim: row-offset length mismatch");
        self.row_offsets = Some(offsets);
        self
    }

    /// Number of implicit rows (`ya` rows).
    pub fn rows(&self) -> usize {
        self.ya.rows()
    }

    /// Number of implicit columns (`yb` rows).
    pub fn cols(&self) -> usize {
        self.yb.rows()
    }

    /// Shared factor rank `d`.
    pub fn rank(&self) -> usize {
        self.ya.cols()
    }

    /// The left factor (`rows × rank`).
    pub fn ya(&self) -> &DenseMatrix {
        &self.ya
    }

    /// The right factor (`cols × rank`).
    pub fn yb(&self) -> &DenseMatrix {
        &self.yb
    }

    /// The kernel applied to factor-row pairs.
    pub fn kernel(&self) -> LowRankKernel {
        self.kernel
    }

    /// The per-row additive offsets, when set.
    pub fn row_offsets(&self) -> Option<&[f64]> {
        self.row_offsets.as_deref()
    }

    /// Evaluates the implicit entry `(i, j)`.
    pub fn value(&self, i: usize, j: usize) -> f64 {
        let v = self.kernel.eval(self.ya.row(i), self.yb.row(j));
        v + self.row_offsets.as_ref().map_or(0.0, |o| o[i])
    }

    /// Fills `out` with row `i` of the implicit matrix. Bit-identical to the
    /// corresponding row of [`Self::fill_dense`]'s output.
    ///
    /// # Panics
    /// Panics when `out.len() != cols()`.
    pub fn fill_row(&self, i: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.cols(), "fill_row: output length mismatch");
        let a = self.ya.row(i);
        for (j, o) in out.iter_mut().enumerate() {
            *o = self.kernel.eval(a, self.yb.row(j));
        }
        if let Some(off) = &self.row_offsets {
            let d = off[i];
            for o in out.iter_mut() {
                *o += d;
            }
        }
    }

    /// First strict maximum of row `i` (lowest column index wins ties),
    /// matching [`vec_ops::argmax`] on the densified row. `None` only for a
    /// zero-column matrix. Uses an `O(cols)` scratch row from `ws`.
    pub fn row_argmax(&self, i: usize, ws: &mut Workspace) -> Option<usize> {
        if self.cols() == 0 {
            return None;
        }
        let mut buf = ws.take(self.cols());
        self.fill_row(i, &mut buf);
        let best = vec_ops::argmax(&buf);
        ws.give(buf);
        best
    }

    /// The next `k` candidates of row `i` in the dense sort-greedy order —
    /// value descending (`partial_cmp`, so `-0.0` ties `0.0`), then column
    /// ascending — strictly after `after` in that order (`None` starts at the
    /// top). Uses an `O(cols)` scratch row from `ws`.
    ///
    /// # Panics
    /// Panics when a row value is NaN (callers assert finiteness up front).
    pub fn row_top_k_after(
        &self,
        i: usize,
        after: Option<(f64, usize)>,
        k: usize,
        ws: &mut Workspace,
    ) -> Vec<(f64, usize)> {
        let mut buf = ws.take(self.cols());
        self.fill_row(i, &mut buf);
        let mut cands: Vec<(f64, usize)> = Vec::new();
        for (j, &v) in buf.iter().enumerate() {
            let eligible = match after {
                None => true,
                Some((av, aj)) => v < av || (v == av && j > aj),
            };
            if eligible {
                cands.push((v, j));
            }
        }
        ws.give(buf);
        cands.sort_by(|x, y| {
            y.0.partial_cmp(&x.0).expect("row_top_k_after: NaN value").then(x.1.cmp(&y.1))
        });
        cands.truncate(k);
        cands
    }

    /// Materializes the full matrix into `out` (shape `rows × cols`),
    /// bit-identical to the dense constructors this factored form replaced:
    /// `Dot` runs `matmul_tr_into` (documented bit-equal to per-entry
    /// [`vec_ops::dot`]), the distance kernels evaluate the exact
    /// `par_from_fn` closures of the pre-factored code.
    pub fn fill_dense(&self, out: &mut DenseMatrix, ws: &mut Workspace) {
        assert_eq!(out.shape(), (self.rows(), self.cols()), "fill_dense: output shape mismatch");
        match self.kernel {
            LowRankKernel::Dot => {
                self.ya.matmul_tr_into(&self.yb, out, ws);
                if let Some(off) = &self.row_offsets {
                    for i in 0..self.rows() {
                        let d = off[i];
                        for j in 0..self.cols() {
                            out.set(i, j, out.get(i, j) + d);
                        }
                    }
                }
            }
            LowRankKernel::NegSqDist | LowRankKernel::ExpNegSqDist => {
                let off = self.row_offsets.as_deref();
                let (ya, yb, kernel) = (&self.ya, &self.yb, self.kernel);
                out.par_fill_from_fn(|i, j| {
                    kernel.eval(ya.row(i), yb.row(j)) + off.map_or(0.0, |o| o[i])
                });
            }
        }
    }

    /// Bytes held by the factored representation (factors + offsets).
    pub fn nbytes(&self) -> usize {
        8 * (self.ya.rows() * self.ya.cols() + self.yb.rows() * self.yb.cols())
            + self.row_offsets.as_ref().map_or(0, |o| 8 * o.len())
    }

    /// Whether both factors and the offsets are free of NaN/infinities.
    pub fn all_finite(&self) -> bool {
        self.ya.all_finite()
            && self.yb.all_finite()
            && self.row_offsets.as_deref().is_none_or(vec_ops::all_finite)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn factors() -> (DenseMatrix, DenseMatrix) {
        let ya = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.5, 0.5], &[0.0, -1.0]]);
        let yb = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0], &[0.5, -0.5], &[2.0, 2.0]]);
        (ya, yb)
    }

    #[test]
    fn value_and_fill_row_match_fill_dense_bitwise() {
        let mut ws = Workspace::new();
        for kernel in [LowRankKernel::Dot, LowRankKernel::NegSqDist, LowRankKernel::ExpNegSqDist] {
            let (ya, yb) = factors();
            let lr = LowRankSim::new(ya, yb, kernel).with_row_offsets(vec![0.25, 0.0, -1.5]);
            let mut dense = DenseMatrix::zeros(lr.rows(), lr.cols());
            lr.fill_dense(&mut dense, &mut ws);
            let mut row = vec![0.0; lr.cols()];
            for i in 0..lr.rows() {
                lr.fill_row(i, &mut row);
                for j in 0..lr.cols() {
                    assert_eq!(row[j].to_bits(), dense.get(i, j).to_bits(), "({i},{j}) {kernel:?}");
                    assert_eq!(lr.value(i, j).to_bits(), dense.get(i, j).to_bits());
                }
            }
        }
    }

    #[test]
    fn row_argmax_matches_dense_argmax() {
        let mut ws = Workspace::new();
        for kernel in [LowRankKernel::Dot, LowRankKernel::NegSqDist, LowRankKernel::ExpNegSqDist] {
            let (ya, yb) = factors();
            let lr = LowRankSim::new(ya, yb, kernel);
            let mut dense = DenseMatrix::zeros(lr.rows(), lr.cols());
            lr.fill_dense(&mut dense, &mut ws);
            for i in 0..lr.rows() {
                assert_eq!(lr.row_argmax(i, &mut ws), vec_ops::argmax(dense.row(i)), "{kernel:?}");
            }
        }
    }

    #[test]
    fn row_top_k_after_pages_through_the_whole_row_in_order() {
        let (ya, yb) = factors();
        let lr = LowRankSim::new(ya, yb, LowRankKernel::Dot);
        let mut ws = Workspace::new();
        // Page through row 1 two candidates at a time and check the
        // concatenation is the full row sorted (value desc, col asc).
        let mut paged = Vec::new();
        let mut after = None;
        loop {
            let chunk = lr.row_top_k_after(1, after, 2, &mut ws);
            if chunk.is_empty() {
                break;
            }
            after = Some(*chunk.last().unwrap());
            paged.extend(chunk);
        }
        let mut full: Vec<(f64, usize)> = (0..lr.cols()).map(|j| (lr.value(1, j), j)).collect();
        full.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap().then(x.1.cmp(&y.1)));
        assert_eq!(paged, full);
    }

    #[test]
    fn degenerate_shapes_are_handled() {
        let lr =
            LowRankSim::new(DenseMatrix::zeros(1, 1), DenseMatrix::zeros(1, 1), LowRankKernel::Dot);
        let mut ws = Workspace::new();
        assert_eq!(lr.row_argmax(0, &mut ws), Some(0));
        let empty_cols =
            LowRankSim::new(DenseMatrix::zeros(2, 3), DenseMatrix::zeros(0, 3), LowRankKernel::Dot);
        assert_eq!(empty_cols.row_argmax(0, &mut ws), None);
        assert!(empty_cols.row_top_k_after(0, None, 4, &mut ws).is_empty());
    }

    #[test]
    fn all_finite_flags_bad_factors_and_offsets() {
        let (ya, yb) = factors();
        let lr = LowRankSim::new(ya.clone(), yb.clone(), LowRankKernel::Dot);
        assert!(lr.all_finite());
        assert!(!lr.with_row_offsets(vec![0.0, f64::NAN, 0.0]).all_finite());
        let mut bad = ya;
        bad.set(0, 0, f64::INFINITY);
        assert!(!LowRankSim::new(bad, yb, LowRankKernel::Dot).all_finite());
    }
}
