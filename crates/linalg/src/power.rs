//! Power iteration for leading eigenvectors.
//!
//! IsoRank's similarity fixed point (Equation 1 of the paper) *is* a power
//! iteration on the Kronecker-structured topology operator, and LREA's
//! relaxed quadratic assignment objective is maximized by power iteration on
//! its four-term operator, so this module provides the shared driver.

use crate::vec_ops;
use crate::{LinalgError, LinearOp};
use graphalign_par::telemetry::{self, Convergence};

/// Result of a converged (or truncated) power iteration.
#[derive(Debug, Clone)]
pub struct PowerResult {
    /// Unit-norm estimate of the dominant eigenvector.
    pub vector: Vec<f64>,
    /// Rayleigh-quotient estimate of the dominant eigenvalue.
    pub value: f64,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final residual `‖M v − λ v‖₂`.
    pub residual: f64,
    /// How the iteration stopped (tolerance met vs `max_iter` truncation);
    /// also reported to the telemetry sink when one is installed.
    pub convergence: Convergence,
}

/// Runs power iteration on `op` starting from `x0`.
///
/// Stops when the iterate moves less than `tol` (in L2) between consecutive
/// normalized iterations or after `max_iter` steps — the paper lets IsoRank
/// return after 100 iterations "even if it has not converged", which callers
/// reproduce by simply accepting the truncated result, so truncation is *not*
/// an error here; inspect [`PowerResult::residual`] if convergence matters.
///
/// # Errors
/// Returns [`LinalgError::NotFinite`] if the iterate degenerates (all-zero or
/// non-finite), which happens only when `op` annihilates the start vector,
/// and [`LinalgError::Interrupted`] when the cell execution budget expires
/// between iterations.
///
/// # Panics
/// Panics if `x0.len() != op.dim()`.
pub fn power_iteration(
    op: &dyn LinearOp,
    x0: &[f64],
    max_iter: usize,
    tol: f64,
) -> Result<PowerResult, LinalgError> {
    let n = op.dim();
    assert_eq!(x0.len(), n, "power_iteration: start vector length mismatch");
    let mut x = x0.to_vec();
    if vec_ops::normalize(&mut x) == 0.0 {
        return Err(LinalgError::NotFinite { routine: "power_iteration" });
    }
    let mut y = vec![0.0; n];
    let mut iterations = 0;
    let mut hit_tol = false;
    for it in 0..max_iter {
        crate::check_budget("power_iteration", it)?;
        iterations = it + 1;
        op.apply(&x, &mut y);
        if !vec_ops::all_finite(&y) {
            return Err(LinalgError::NotFinite { routine: "power_iteration" });
        }
        let norm = vec_ops::normalize(&mut y);
        if norm == 0.0 {
            return Err(LinalgError::NotFinite { routine: "power_iteration" });
        }
        // Fix sign to compare consecutive iterates (eigenvectors are defined
        // up to sign; for negative dominant eigenvalues iterates alternate).
        let (d_minus_sq, d_plus_sq) = vec_ops::dist2_sq_both(&x, &y);
        let delta = d_minus_sq.sqrt().min(d_plus_sq.sqrt());
        telemetry::record_residual("power_iteration", delta);
        std::mem::swap(&mut x, &mut y);
        if delta < tol {
            hit_tol = true;
            break;
        }
    }
    // Rayleigh quotient and residual.
    op.apply(&x, &mut y);
    let value = vec_ops::dot(&x, &y);
    let mut residual_vec = y.clone();
    vec_ops::axpy(-value, &x, &mut residual_vec);
    let residual = vec_ops::norm2(&residual_vec);
    let convergence = if hit_tol {
        Convergence::tolerance(iterations, residual)
    } else {
        Convergence::max_iter(iterations, residual)
    };
    telemetry::record("power_iteration", convergence);
    Ok(PowerResult { vector: x, value, iterations, residual, convergence })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;

    #[test]
    fn finds_dominant_eigenpair_of_diagonal() {
        let m = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 5.0]]);
        let r = power_iteration(&m, &[1.0, 1.0], 200, 1e-12).unwrap();
        assert!((r.value - 5.0).abs() < 1e-8);
        assert!(r.vector[1].abs() > 0.999);
        assert!(r.residual < 1e-6);
    }

    #[test]
    fn handles_negative_dominant_eigenvalue() {
        let m = DenseMatrix::from_rows(&[&[-4.0, 0.0], &[0.0, 1.0]]);
        let r = power_iteration(&m, &[1.0, 1.0], 500, 1e-12).unwrap();
        assert!((r.value + 4.0).abs() < 1e-6, "value {}", r.value);
    }

    #[test]
    fn symmetric_matrix_dominant_pair() {
        // [[2,1],[1,2]]: dominant λ=3 with eigenvector (1,1)/√2.
        let m = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let r = power_iteration(&m, &[1.0, 0.0], 500, 1e-13).unwrap();
        assert!((r.value - 3.0).abs() < 1e-9);
        assert!((r.vector[0].abs() - (0.5f64).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn truncation_is_not_an_error() {
        let m = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let r = power_iteration(&m, &[1.0, 0.0], 1, 0.0).unwrap();
        assert_eq!(r.iterations, 1);
        assert!(!r.convergence.converged, "truncated run must not claim convergence");
        assert_eq!(r.convergence.stop, telemetry::StopReason::MaxIter);
    }

    #[test]
    fn convergence_record_reports_tolerance_stop() {
        let m = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 5.0]]);
        let _g = telemetry::install(true);
        let r = power_iteration(&m, &[1.0, 1.0], 200, 1e-12).unwrap();
        assert!(r.convergence.converged);
        assert_eq!(r.convergence.stop, telemetry::StopReason::Tolerance);
        assert_eq!(r.convergence.iterations, r.iterations);
        let t = telemetry::drain();
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.events[0].routine, "power_iteration");
        assert_eq!(t.series.len(), 1, "trace mode keeps the residual series");
        assert_eq!(t.series[0].residuals.len(), r.iterations);
        assert!(t.series[0].residuals.windows(2).all(|w| w[1] <= w[0] * 1.01));
    }

    #[test]
    fn expired_budget_interrupts() {
        let m = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let _g = graphalign_par::budget::install(Some(std::time::Duration::ZERO));
        let err = power_iteration(&m, &[1.0, 0.0], 100, 1e-12).unwrap_err();
        assert!(err.is_interrupted(), "got {err:?}");
    }

    #[test]
    fn zero_start_vector_is_rejected() {
        let m = DenseMatrix::identity(2);
        assert!(power_iteration(&m, &[0.0, 0.0], 10, 1e-10).is_err());
    }

    #[test]
    fn annihilated_start_vector_is_rejected() {
        // M = 0 annihilates everything.
        let m = DenseMatrix::zeros(2, 2);
        assert!(power_iteration(&m, &[1.0, 0.0], 10, 1e-10).is_err());
    }
}
