//! JSON serialization of [`Similarity`] values — the persistence format of
//! the serving layer's precomputation cache.
//!
//! A cached factor is only reusable if loading it back reproduces the
//! original *bit for bit*: the serving contract is that a warm (cache-hit)
//! request returns a matching identical to the cold run's. The
//! `graphalign-json` printer emits every `f64` in shortest-roundtrip form
//! (and integers < 2^53 exactly), so the round trip here is exact — except
//! for NaN/infinities, which JSON cannot represent; [`similarity_to_json`]
//! therefore refuses non-finite input instead of silently corrupting it.
//!
//! The format carries a `repr` discriminant mirroring
//! [`Similarity::repr_kind`] plus a `format` version tag; readers reject
//! unknown versions so stale cache files miss instead of aliasing.

use crate::dense::DenseMatrix;
use crate::lowrank::{LowRankKernel, LowRankSim};
use crate::similarity::Similarity;
use crate::sparse::CsrMatrix;
use graphalign_json::Json;

/// Version tag embedded in every serialized similarity; bump on any layout
/// change so old cache entries are ignored rather than misread.
pub const FORMAT: &str = "similarity/v1";

/// FNV-1a 64-bit hash — the content checksum of persisted cache entries.
/// Stable across runs and platforms, so a restarted server can verify
/// entries written by a previous process.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x00000100000001b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Serializes a similarity as a crash-evident two-line disk entry:
///
/// ```text
/// {"format":"similarity/v1","checksum":"<fnv1a-64 hex>","bytes":<payload len>}
/// <compact similarity/v1 JSON payload>
/// ```
///
/// The header carries the payload's exact byte length and FNV-1a checksum,
/// so [`from_checksummed_str`] detects both truncation (a torn write that
/// lost the tail) and in-place corruption (bit flips) without re-parsing a
/// possibly-garbage payload into a plausible-but-wrong similarity.
///
/// # Errors
/// Propagates [`similarity_to_json`]'s refusal of non-finite entries.
pub fn to_checksummed_string(sim: &Similarity) -> Result<String, String> {
    let payload = similarity_to_json(sim)?.to_string_compact();
    Ok(format!(
        "{{\"format\":{FORMAT:?},\"checksum\":\"{:016x}\",\"bytes\":{}}}\n{payload}\n",
        fnv1a_64(payload.as_bytes()),
        payload.len()
    ))
}

/// Deserializes an entry written by [`to_checksummed_string`], verifying the
/// declared payload length and checksum before parsing the payload.
///
/// # Errors
/// Returns a human-readable message on a missing or malformed header, a
/// truncated payload, a checksum mismatch, or any payload-level decode
/// failure — callers quarantine such entries instead of serving them.
pub fn from_checksummed_str(text: &str) -> Result<Similarity, String> {
    let (header_line, rest) =
        text.split_once('\n').ok_or("truncated entry: no payload line after the header")?;
    let header = graphalign_json::from_str(header_line)
        .map_err(|e| format!("corrupt entry header: {e:?}"))?;
    let format = field(&header, "format")?.as_str().ok_or("header format not a string")?;
    if format != FORMAT {
        return Err(format!("unsupported entry format {format:?} (expected {FORMAT:?})"));
    }
    let declared = field_usize(&header, "bytes")?;
    let checksum = field(&header, "checksum")?.as_str().ok_or("header checksum not a string")?;
    // The final newline is the commit marker: a write that died before it
    // is treated as truncated even when the payload itself is complete.
    let payload = rest
        .strip_suffix('\n')
        .ok_or("truncated entry: payload line is missing its trailing newline")?;
    if payload.len() != declared {
        return Err(format!(
            "truncated entry: payload is {} bytes, header declares {declared}",
            payload.len()
        ));
    }
    let actual = format!("{:016x}", fnv1a_64(payload.as_bytes()));
    if actual != checksum {
        return Err(format!("checksum mismatch: header {checksum:?}, payload {actual:?}"));
    }
    let json =
        graphalign_json::from_str(payload).map_err(|e| format!("corrupt entry payload: {e:?}"))?;
    similarity_from_json(&json)
}

fn num_array(values: impl Iterator<Item = f64>) -> Json {
    Json::Arr(values.map(Json::Num).collect())
}

fn dense_to_json(m: &DenseMatrix) -> Json {
    Json::Obj(vec![
        ("rows".into(), Json::Num(m.rows() as f64)),
        ("cols".into(), Json::Num(m.cols() as f64)),
        ("data".into(), num_array(m.as_slice().iter().copied())),
    ])
}

fn dense_from_json(v: &Json) -> Result<DenseMatrix, String> {
    let rows = field_usize(v, "rows")?;
    let cols = field_usize(v, "cols")?;
    let data = field_f64_vec(v, "data")?;
    if data.len() != rows * cols {
        return Err(format!("dense data length {} != {rows}x{cols}", data.len()));
    }
    Ok(DenseMatrix::from_vec(rows, cols, data))
}

fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, String> {
    v.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn field_usize(v: &Json, key: &str) -> Result<usize, String> {
    field(v, key)?.as_f64().map(|n| n as usize).ok_or_else(|| format!("field {key:?} not a number"))
}

fn field_f64_vec(v: &Json, key: &str) -> Result<Vec<f64>, String> {
    field(v, key)?
        .as_array()
        .ok_or_else(|| format!("field {key:?} not an array"))?
        .iter()
        .map(|x| x.as_f64().ok_or_else(|| format!("non-numeric entry in {key:?}")))
        .collect()
}

fn field_usize_vec(v: &Json, key: &str) -> Result<Vec<usize>, String> {
    Ok(field_f64_vec(v, key)?.into_iter().map(|n| n as usize).collect())
}

/// Parses a [`LowRankKernel`] from its [`LowRankKernel::as_str`] name.
pub fn kernel_from_str(s: &str) -> Option<LowRankKernel> {
    match s {
        "dot" => Some(LowRankKernel::Dot),
        "neg_sq_dist" => Some(LowRankKernel::NegSqDist),
        "exp_neg_sq_dist" => Some(LowRankKernel::ExpNegSqDist),
        _ => None,
    }
}

/// Serializes a similarity in its native representation.
///
/// # Errors
/// Returns an error when the similarity contains NaN/infinities (JSON has no
/// representation for them, and a lossy round trip would break the
/// bit-identical warm-request contract).
pub fn similarity_to_json(sim: &Similarity) -> Result<Json, String> {
    if !sim.all_finite() {
        return Err("similarity contains non-finite entries; refusing lossy serialization".into());
    }
    let mut members = vec![
        ("format".to_string(), Json::Str(FORMAT.into())),
        ("repr".to_string(), Json::Str(sim.repr_kind().into())),
    ];
    match sim {
        Similarity::Dense(m) => members.push(("matrix".into(), dense_to_json(m))),
        Similarity::LowRank(lr) => {
            members.push(("kernel".into(), Json::Str(lr.kernel().as_str().into())));
            members.push(("ya".into(), dense_to_json(lr.ya())));
            members.push(("yb".into(), dense_to_json(lr.yb())));
            members.push((
                "row_offsets".into(),
                match lr.row_offsets() {
                    Some(o) => num_array(o.iter().copied()),
                    None => Json::Null,
                },
            ));
        }
        Similarity::Sparse(s) => {
            members.push(("rows".into(), Json::Num(s.rows() as f64)));
            members.push(("cols".into(), Json::Num(s.cols() as f64)));
            // Row-major CSR walk; rebuilt via from_triplets, which restores
            // the identical sorted layout.
            let mut ridx = Vec::with_capacity(s.nnz());
            let mut cidx = Vec::with_capacity(s.nnz());
            let mut vals = Vec::with_capacity(s.nnz());
            for i in 0..s.rows() {
                for (j, v) in s.row_iter(i) {
                    ridx.push(Json::Num(i as f64));
                    cidx.push(Json::Num(j as f64));
                    vals.push(Json::Num(v));
                }
            }
            members.push(("row_indices".into(), Json::Arr(ridx)));
            members.push(("col_indices".into(), Json::Arr(cidx)));
            members.push(("values".into(), Json::Arr(vals)));
        }
    }
    Ok(Json::Obj(members))
}

/// Deserializes a similarity previously written by [`similarity_to_json`].
///
/// # Errors
/// Returns an error on unknown format versions, unknown representations or
/// kernels, and any shape/type mismatch.
pub fn similarity_from_json(v: &Json) -> Result<Similarity, String> {
    let format = field(v, "format")?.as_str().ok_or("format not a string")?;
    if format != FORMAT {
        return Err(format!("unsupported similarity format {format:?} (expected {FORMAT:?})"));
    }
    match field(v, "repr")?.as_str().ok_or("repr not a string")? {
        "dense" => Ok(Similarity::Dense(dense_from_json(field(v, "matrix")?)?)),
        "lowrank" => {
            let kernel_name = field(v, "kernel")?.as_str().ok_or("kernel not a string")?;
            let kernel = kernel_from_str(kernel_name)
                .ok_or_else(|| format!("unknown kernel {kernel_name:?}"))?;
            let ya = dense_from_json(field(v, "ya")?)?;
            let yb = dense_from_json(field(v, "yb")?)?;
            if ya.cols() != yb.cols() {
                return Err(format!("factor ranks differ: {} vs {}", ya.cols(), yb.cols()));
            }
            let mut lr = LowRankSim::new(ya, yb, kernel);
            if !matches!(field(v, "row_offsets")?, Json::Null) {
                let offsets = field_f64_vec(v, "row_offsets")?;
                if offsets.len() != lr.rows() {
                    return Err(format!(
                        "row_offsets length {} != rows {}",
                        offsets.len(),
                        lr.rows()
                    ));
                }
                lr = lr.with_row_offsets(offsets);
            }
            Ok(Similarity::LowRank(lr))
        }
        "sparse" => {
            let rows = field_usize(v, "rows")?;
            let cols = field_usize(v, "cols")?;
            let ridx = field_usize_vec(v, "row_indices")?;
            let cidx = field_usize_vec(v, "col_indices")?;
            let vals = field_f64_vec(v, "values")?;
            if ridx.len() != cidx.len() || ridx.len() != vals.len() {
                return Err("sparse triplet arrays have mismatched lengths".into());
            }
            if let Some(&i) = ridx.iter().find(|&&i| i >= rows) {
                return Err(format!("sparse row index {i} out of range for {rows} rows"));
            }
            if let Some(&j) = cidx.iter().find(|&&j| j >= cols) {
                return Err(format!("sparse col index {j} out of range for {cols} cols"));
            }
            let triplets: Vec<(usize, usize, f64)> =
                ridx.into_iter().zip(cidx).zip(vals).map(|((i, j), val)| (i, j, val)).collect();
            Ok(Similarity::Sparse(CsrMatrix::from_triplets(rows, cols, &triplets)))
        }
        other => Err(format!("unknown similarity repr {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_bit_identical(a: &Similarity, b: &Similarity) {
        assert_eq!(a.shape(), b.shape());
        assert_eq!(a.repr_kind(), b.repr_kind());
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                assert_eq!(a.get(i, j).to_bits(), b.get(i, j).to_bits(), "entry ({i},{j})");
            }
        }
    }

    #[test]
    fn dense_round_trips_bit_exactly() {
        // Include values with no short decimal form.
        let m = DenseMatrix::from_vec(
            2,
            3,
            vec![0.1 + 0.2, -1.0 / 3.0, f64::MIN_POSITIVE, 0.0, -0.0, 1e300],
        );
        let sim = Similarity::Dense(m);
        let text = similarity_to_json(&sim).unwrap().to_string_compact();
        let back = similarity_from_json(&graphalign_json::from_str(&text).unwrap()).unwrap();
        assert_bit_identical(&sim, &back);
        // -0.0 must survive (its bits differ from 0.0).
        if let Similarity::Dense(back_m) = &back {
            assert_eq!(back_m.get(1, 1).to_bits(), (-0.0f64).to_bits());
        }
    }

    #[test]
    fn lowrank_round_trips_with_and_without_offsets() {
        let ya = DenseMatrix::from_rows(&[&[0.6, 0.8], &[1.0, 1.0 / 3.0]]);
        let yb = DenseMatrix::from_rows(&[&[0.0, 1.0], &[0.8, 0.6], &[0.25, 0.1]]);
        for offsets in [None, Some(vec![0.125, -2.0 / 3.0])] {
            let mut lr = LowRankSim::new(ya.clone(), yb.clone(), LowRankKernel::ExpNegSqDist);
            if let Some(o) = offsets.clone() {
                lr = lr.with_row_offsets(o);
            }
            let sim = Similarity::LowRank(lr);
            let text = similarity_to_json(&sim).unwrap().to_string_compact();
            let back = similarity_from_json(&graphalign_json::from_str(&text).unwrap()).unwrap();
            assert_bit_identical(&sim, &back);
            if let (Similarity::LowRank(a), Similarity::LowRank(b)) = (&sim, &back) {
                assert_eq!(a.kernel(), b.kernel());
                assert_eq!(a.row_offsets(), b.row_offsets());
            }
        }
    }

    #[test]
    fn sparse_round_trips_with_explicit_zeros() {
        let s = CsrMatrix::from_triplets(3, 4, &[(0, 1, -2.5), (1, 0, 0.0), (2, 3, 1.0 / 7.0)]);
        let sim = Similarity::Sparse(s);
        let text = similarity_to_json(&sim).unwrap().to_string_compact();
        let back = similarity_from_json(&graphalign_json::from_str(&text).unwrap()).unwrap();
        assert_bit_identical(&sim, &back);
        if let (Similarity::Sparse(a), Similarity::Sparse(b)) = (&sim, &back) {
            assert_eq!(a.nnz(), b.nnz(), "explicit zeros survive the round trip");
        }
    }

    #[test]
    fn degenerate_lowrank_shapes_round_trip() {
        // k = 0: zero-rank factors (every entry is the empty dot product /
        // the kernel of distance 0). n = 1: single-row factors. Both have
        // bitten codecs that assume non-empty data arrays, so each goes
        // through the plain payload AND the checksummed envelope.
        let cases = [
            // (ya, yb, kernel)
            (DenseMatrix::zeros(3, 0), DenseMatrix::zeros(2, 0), LowRankKernel::Dot),
            (DenseMatrix::zeros(1, 0), DenseMatrix::zeros(1, 0), LowRankKernel::ExpNegSqDist),
            (
                DenseMatrix::from_rows(&[&[0.1 + 0.2, -0.0]]),
                DenseMatrix::from_rows(&[&[1e-300, -1.0 / 3.0]]),
                LowRankKernel::NegSqDist,
            ),
        ];
        for (ya, yb, kernel) in cases {
            let n = ya.rows();
            for offsets in [None, Some((0..n).map(|i| -0.5 * i as f64).collect::<Vec<_>>())] {
                let mut lr = LowRankSim::new(ya.clone(), yb.clone(), kernel);
                if let Some(o) = offsets {
                    lr = lr.with_row_offsets(o);
                }
                let sim = Similarity::LowRank(lr);
                let text = similarity_to_json(&sim).unwrap().to_string_compact();
                let back =
                    similarity_from_json(&graphalign_json::from_str(&text).unwrap()).unwrap();
                assert_bit_identical(&sim, &back);
                let envelope = to_checksummed_string(&sim).unwrap();
                let back = from_checksummed_str(&envelope).unwrap();
                assert_bit_identical(&sim, &back);
                if let (Similarity::LowRank(a), Similarity::LowRank(b)) = (&sim, &back) {
                    assert_eq!(a.kernel(), b.kernel());
                    assert_eq!(a.row_offsets(), b.row_offsets());
                }
            }
        }
    }

    #[test]
    fn sparse_degenerate_shapes_and_negative_zero_round_trip() {
        // Mirrors the Dense -0.0 test for the sparse codec: a stored -0.0
        // must keep its sign bit (it is a *stored* entry, distinct from the
        // implicit 0.0 background), and empty / single-cell matrices must
        // survive both the plain payload and the checksummed envelope.
        let cases = [
            CsrMatrix::from_triplets(2, 3, &[(0, 1, -0.0), (1, 2, 0.1 + 0.2)]),
            CsrMatrix::from_triplets(3, 4, &[]), // no stored entries at all
            CsrMatrix::from_triplets(1, 1, &[(0, 0, f64::MIN_POSITIVE)]),
        ];
        for s in cases {
            let nnz = s.nnz();
            let sim = Similarity::Sparse(s);
            let text = similarity_to_json(&sim).unwrap().to_string_compact();
            let back = similarity_from_json(&graphalign_json::from_str(&text).unwrap()).unwrap();
            assert_bit_identical(&sim, &back);
            let envelope = to_checksummed_string(&sim).unwrap();
            let back = from_checksummed_str(&envelope).unwrap();
            assert_bit_identical(&sim, &back);
            if let Similarity::Sparse(b) = &back {
                assert_eq!(b.nnz(), nnz, "stored-entry count must survive");
            }
        }
    }

    #[test]
    fn every_truncation_of_a_checksummed_sparse_entry_is_detected() {
        let sim = Similarity::Sparse(CsrMatrix::from_triplets(2, 2, &[(0, 0, 0.5), (1, 1, -0.0)]));
        let text = to_checksummed_string(&sim).unwrap();
        for cut in 0..text.len() {
            assert!(
                from_checksummed_str(&text[..cut]).is_err(),
                "truncation at byte {cut} of {} went undetected",
                text.len()
            );
        }
    }

    #[test]
    fn non_finite_values_are_refused() {
        let sim = Similarity::Dense(DenseMatrix::from_vec(1, 2, vec![1.0, f64::NAN]));
        assert!(similarity_to_json(&sim).is_err());
    }

    #[test]
    fn unknown_format_and_repr_are_rejected() {
        let sim = Similarity::Dense(DenseMatrix::zeros(1, 1));
        let mut v = similarity_to_json(&sim).unwrap();
        if let Json::Obj(members) = &mut v {
            members[0].1 = Json::Str("similarity/v999".into());
        }
        assert!(similarity_from_json(&v).is_err());
        let mut v = similarity_to_json(&sim).unwrap();
        if let Json::Obj(members) = &mut v {
            members[1].1 = Json::Str("holographic".into());
        }
        assert!(similarity_from_json(&v).is_err());
    }

    #[test]
    fn checksummed_entries_round_trip_bit_exactly() {
        let sims = [
            Similarity::Dense(DenseMatrix::from_vec(
                2,
                2,
                vec![0.1 + 0.2, -0.0, 1e300, -1.0 / 3.0],
            )),
            Similarity::Sparse(CsrMatrix::from_triplets(2, 3, &[(0, 2, 0.5), (1, 0, -2.0)])),
        ];
        for sim in sims {
            let text = to_checksummed_string(&sim).unwrap();
            let back = from_checksummed_str(&text).unwrap();
            assert_bit_identical(&sim, &back);
        }
    }

    #[test]
    fn every_truncation_of_a_checksummed_entry_is_detected() {
        let sim = Similarity::Dense(DenseMatrix::from_vec(2, 2, vec![1.5, -2.25, 0.0, 4.0]));
        let text = to_checksummed_string(&sim).unwrap();
        for cut in 0..text.len() {
            let truncated = &text[..cut];
            assert!(
                from_checksummed_str(truncated).is_err(),
                "truncation at byte {cut} of {} went undetected",
                text.len()
            );
        }
    }

    #[test]
    fn every_single_bit_flip_of_a_checksummed_entry_is_detected() {
        let sim = Similarity::Dense(DenseMatrix::from_vec(1, 3, vec![0.5, -1.0, 3.25]));
        let text = to_checksummed_string(&sim).unwrap();
        let bytes = text.as_bytes();
        for pos in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.to_vec();
                corrupt[pos] ^= 1 << bit;
                // Non-UTF8 corruption cannot even reach the parser here; the
                // cache layer reads with `from_utf8` and quarantines on error.
                let Ok(corrupt) = String::from_utf8(corrupt) else { continue };
                assert!(
                    from_checksummed_str(&corrupt).is_err(),
                    "bit {bit} of byte {pos} flipped without detection"
                );
            }
        }
    }

    #[test]
    fn legacy_unchecksummed_entries_are_rejected_not_misread() {
        // PR-6 cache files were the raw payload with no header line; the
        // checksummed reader must refuse them so they quarantine and
        // recompute rather than alias.
        let sim = Similarity::Dense(DenseMatrix::zeros(2, 2));
        let legacy = similarity_to_json(&sim).unwrap().to_string_compact();
        assert!(from_checksummed_str(&legacy).is_err());
    }

    #[test]
    fn fnv1a_64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn shape_mismatches_are_rejected() {
        let sim = Similarity::Dense(DenseMatrix::zeros(2, 2));
        let text = similarity_to_json(&sim).unwrap().to_string_compact();
        let tampered = text.replace("\"rows\":2", "\"rows\":3");
        let parsed = graphalign_json::from_str(&tampered).unwrap();
        assert!(similarity_from_json(&parsed).is_err());
    }
}
