//! Exact dense symmetric eigendecomposition.
//!
//! The implementation is the classical two-stage EISPACK pipeline used by
//! every serious numerical library:
//!
//! 1. `tred2` — Householder reduction of a real symmetric matrix to
//!    tridiagonal form, accumulating the orthogonal transformation;
//! 2. `tql2` — implicit-shift QL iteration on the tridiagonal matrix.
//!
//! The result is the full spectrum with orthonormal eigenvectors, suitable for
//! the modest dense systems this workspace needs (GRASP's base-alignment
//! blocks, Gram matrices inside [`crate::svd`], landmark matrices in REGAL,
//! Procrustes steps in CONE). For the *bottom-k* of large sparse Laplacians,
//! use [`crate::lanczos`] instead.

use crate::dense::DenseMatrix;
use crate::LinalgError;
use graphalign_par::telemetry::{self, Convergence};

/// A full symmetric eigendecomposition `M = V diag(λ) Vᵀ`.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Eigenvectors as *columns*, in the order of [`Self::values`].
    pub vectors: DenseMatrix,
}

impl SymmetricEigen {
    /// Eigenvector for `values[k]`, as an owned column.
    pub fn vector(&self, k: usize) -> Vec<f64> {
        self.vectors.col(k)
    }
}

/// Computes the full eigendecomposition of a symmetric matrix.
///
/// Only the lower triangle of `m` is read; the strictly upper triangle is
/// assumed to mirror it.
///
/// # Errors
/// Returns [`LinalgError::NotFinite`] for NaN/inf input and
/// [`LinalgError::NoConvergence`] if the QL iteration stalls (essentially
/// impossible for finite input).
///
/// # Panics
/// Panics if `m` is not square.
pub fn symmetric_eigen(m: &DenseMatrix) -> Result<SymmetricEigen, LinalgError> {
    assert_eq!(m.rows(), m.cols(), "symmetric_eigen: matrix must be square");
    if !m.all_finite() {
        return Err(LinalgError::NotFinite { routine: "symmetric_eigen" });
    }
    let n = m.rows();
    if n == 0 {
        return Ok(SymmetricEigen { values: Vec::new(), vectors: DenseMatrix::zeros(0, 0) });
    }
    let mut v = m.clone();
    let mut d = vec![0.0; n]; // diagonal
    let mut e = vec![0.0; n]; // off-diagonal
    tred2(&mut v, &mut d, &mut e);
    tql2(&mut v, &mut d, &mut e)?;
    // tql2 leaves eigenvalues sorted ascending with matching vector columns.
    Ok(SymmetricEigen { values: d, vectors: v })
}

/// Householder reduction to tridiagonal form (EISPACK `tred2`).
///
/// On exit `v` holds the accumulated orthogonal transform Q (so that
/// `Qᵀ M Q` is tridiagonal), `d` the diagonal and `e` the sub-diagonal
/// (with `e[0] = 0`).
fn tred2(v: &mut DenseMatrix, d: &mut [f64], e: &mut [f64]) {
    let n = d.len();
    for j in 0..n {
        d[j] = v.get(n - 1, j);
    }
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        let mut scale = 0.0;
        for item in d.iter().take(l + 1) {
            scale += item.abs();
        }
        if scale == 0.0 {
            e[i] = d[l];
            for j in 0..=l {
                d[j] = v.get(l, j);
                v.set(i, j, 0.0);
                v.set(j, i, 0.0);
            }
        } else {
            for item in d.iter_mut().take(l + 1) {
                *item /= scale;
                h += *item * *item;
            }
            let mut f = d[l];
            let mut g = if f > 0.0 { -h.sqrt() } else { h.sqrt() };
            e[i] = scale * g;
            h -= f * g;
            d[l] = f - g;
            for item in e.iter_mut().take(l + 1) {
                *item = 0.0;
            }
            for j in 0..=l {
                f = d[j];
                v.set(j, i, f);
                g = e[j] + v.get(j, j) * f;
                for k in (j + 1)..=l {
                    g += v.get(k, j) * d[k];
                    e[k] += v.get(k, j) * f;
                }
                e[j] = g;
            }
            f = 0.0;
            for j in 0..=l {
                e[j] /= h;
                f += e[j] * d[j];
            }
            let hh = f / (h + h);
            for j in 0..=l {
                e[j] -= hh * d[j];
            }
            for j in 0..=l {
                f = d[j];
                g = e[j];
                for k in j..=l {
                    let upd = v.get(k, j) - (f * e[k] + g * d[k]);
                    v.set(k, j, upd);
                }
                d[j] = v.get(l, j);
                v.set(i, j, 0.0);
            }
        }
        d[i] = h;
    }
    for i in 0..n - 1 {
        v.set(n - 1, i, v.get(i, i));
        v.set(i, i, 1.0);
        let h = d[i + 1];
        if h != 0.0 {
            for k in 0..=i {
                d[k] = v.get(k, i + 1) / h;
            }
            for j in 0..=i {
                let mut g = 0.0;
                for k in 0..=i {
                    g += v.get(k, i + 1) * v.get(k, j);
                }
                for k in 0..=i {
                    let upd = v.get(k, j) - g * d[k];
                    v.set(k, j, upd);
                }
            }
        }
        for k in 0..=i {
            v.set(k, i + 1, 0.0);
        }
    }
    for j in 0..n {
        d[j] = v.get(n - 1, j);
        v.set(n - 1, j, 0.0);
    }
    v.set(n - 1, n - 1, 1.0);
    e[0] = 0.0;
}

/// Implicit-shift QL iteration on a symmetric tridiagonal matrix
/// (EISPACK `tql2`), accumulating eigenvectors into `v`.
fn tql2(v: &mut DenseMatrix, d: &mut [f64], e: &mut [f64]) -> Result<(), LinalgError> {
    let n = d.len();
    if n == 1 {
        return Ok(());
    }
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    let mut f = 0.0_f64;
    let mut tst1 = 0.0_f64;
    let eps = f64::EPSILON;
    let mut total_iters = 0usize;
    for l in 0..n {
        tst1 = tst1.max(d[l].abs() + e[l].abs());
        let mut m = l;
        while m < n {
            if e[m].abs() <= eps * tst1 {
                break;
            }
            m += 1;
        }
        if m >= n {
            m = n - 1;
        }
        if m > l {
            let mut iter = 0;
            loop {
                iter += 1;
                total_iters += 1;
                if iter > 50 {
                    telemetry::record("tql2", Convergence::max_iter(total_iters, e[l].abs()));
                    return Err(LinalgError::NoConvergence { routine: "tql2", iterations: iter });
                }
                // Compute implicit shift.
                let mut g = d[l];
                let mut p = (d[l + 1] - g) / (2.0 * e[l]);
                let mut r = p.hypot(1.0);
                if p < 0.0 {
                    r = -r;
                }
                d[l] = e[l] / (p + r);
                d[l + 1] = e[l] * (p + r);
                let dl1 = d[l + 1];
                let mut h = g - d[l];
                for item in d.iter_mut().take(n).skip(l + 2) {
                    *item -= h;
                }
                f += h;
                // Implicit QL transformation.
                p = d[m];
                let mut c = 1.0;
                let mut c2 = c;
                let mut c3 = c;
                let el1 = e[l + 1];
                let mut s = 0.0;
                let mut s2 = 0.0;
                for i in (l..m).rev() {
                    c3 = c2;
                    c2 = c;
                    s2 = s;
                    g = c * e[i];
                    h = c * p;
                    r = p.hypot(e[i]);
                    e[i + 1] = s * r;
                    s = e[i] / r;
                    c = p / r;
                    p = c * d[i] - s * g;
                    d[i + 1] = h + s * (c * g + s * d[i]);
                    // Accumulate transformation.
                    for k in 0..n {
                        h = v.get(k, i + 1);
                        v.set(k, i + 1, s * v.get(k, i) + c * h);
                        v.set(k, i, c * v.get(k, i) - s * h);
                    }
                }
                p = -s * s2 * c3 * el1 * e[l] / dl1;
                e[l] = s * p;
                d[l] = c * p;
                if e[l].abs() <= eps * tst1 {
                    break;
                }
            }
        }
        d[l] += f;
        e[l] = 0.0;
    }

    // Sort eigenvalues ascending, permuting vector columns to match.
    for i in 0..n - 1 {
        let mut k = i;
        let mut p = d[i];
        for (j, &dj) in d.iter().enumerate().take(n).skip(i + 1) {
            if dj < p {
                k = j;
                p = dj;
            }
        }
        if k != i {
            d.swap(i, k);
            for row in 0..n {
                let tmp = v.get(row, i);
                v.set(row, i, v.get(row, k));
                v.set(row, k, tmp);
            }
        }
    }
    telemetry::record("tql2", Convergence::tolerance(total_iters, 0.0));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(e: &SymmetricEigen) -> DenseMatrix {
        let n = e.values.len();
        let lambda = DenseMatrix::from_fn(n, n, |i, j| if i == j { e.values[i] } else { 0.0 });
        e.vectors.matmul(&lambda).matmul_tr(&e.vectors)
    }

    #[test]
    fn diagonal_matrix_eigenvalues_are_its_diagonal() {
        let m = DenseMatrix::from_rows(&[&[3.0, 0.0], &[0.0, -1.0]]);
        let e = symmetric_eigen(&m).unwrap();
        assert!((e.values[0] + 1.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let m = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = symmetric_eigen(&m).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_and_orthonormality_random_symmetric() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(7);
        let n = 25;
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v: f64 = rng.random_range(-1.0..1.0);
                m.set(i, j, v);
                m.set(j, i, v);
            }
        }
        let e = symmetric_eigen(&m).unwrap();
        // Reconstruction.
        let err = reconstruct(&e).sub(&m).max_abs();
        assert!(err < 1e-9, "reconstruction error {err}");
        // VᵀV = I.
        let gram = e.vectors.tr_matmul(&e.vectors);
        let id = DenseMatrix::identity(n);
        assert!(gram.sub(&id).max_abs() < 1e-10);
        // Ascending order.
        for w in e.values.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn path_graph_laplacian_spectrum() {
        // Unnormalized Laplacian of the path on 3 nodes: eigenvalues 0, 1, 3.
        let m = DenseMatrix::from_rows(&[&[1.0, -1.0, 0.0], &[-1.0, 2.0, -1.0], &[0.0, -1.0, 1.0]]);
        let e = symmetric_eigen(&m).unwrap();
        assert!((e.values[0]).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        assert!((e.values[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        let e = symmetric_eigen(&DenseMatrix::zeros(0, 0)).unwrap();
        assert!(e.values.is_empty());
        let e = symmetric_eigen(&DenseMatrix::from_rows(&[&[5.0]])).unwrap();
        assert_eq!(e.values, vec![5.0]);
        assert_eq!(e.vectors.get(0, 0).abs(), 1.0);
    }

    #[test]
    fn rejects_nan() {
        let m = DenseMatrix::from_rows(&[&[f64::NAN]]);
        assert!(matches!(symmetric_eigen(&m), Err(LinalgError::NotFinite { .. })));
    }

    #[test]
    fn eigenvectors_satisfy_definition() {
        let m = DenseMatrix::from_rows(&[&[4.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 2.0]]);
        let e = symmetric_eigen(&m).unwrap();
        for k in 0..3 {
            let v = e.vector(k);
            let mv = m.mul_vec(&v);
            for i in 0..3 {
                assert!((mv[i] - e.values[k] * v[i]).abs() < 1e-10);
            }
        }
    }
}
