//! Explicit-SIMD microkernels with bit-identical scalar twins.
//!
//! Every function here exists in two implementations: an AVX2 path written
//! with `std::arch` intrinsics and a scalar twin that performs *the exact
//! same floating-point operations in the exact same order*. Dispatch is a
//! runtime decision ([`simd_active`]): the build pins `target-cpu=x86-64-v3`
//! in `.cargo/config.toml`, but a binary compiled without that pin (or run
//! on a pre-AVX2 machine, or any non-x86_64 target) falls back to the twin
//! without ever executing an illegal instruction. Either path produces the
//! same bits, so the choice is invisible to everything downstream — the
//! property tests in `tests/proptests.rs` enforce this for every remainder
//! width.
//!
//! # The lane-group accumulation contract
//!
//! Element-wise kernels ([`axpy`], [`scale`], and the GEMM tiles) are
//! trivially order-preserving: each output element accumulates its terms in
//! ascending shared-index order with one rounding per multiply and one per
//! add, exactly like the scalar loop, so vectorizing across *elements*
//! cannot change a bit.
//!
//! Reductions ([`dot`], [`sum`], [`dist2_sq`]) cannot keep the historical
//! single-accumulator order and still vectorize, so this module *defines*
//! their summation order as the 8-stripe lane-group order: lane `k ∈ 0..8`
//! accumulates indices `i ≡ k (mod 8)` over the 8-aligned prefix, lanes are
//! combined in the fixed tree `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))` —
//! the natural AVX2 reduction shape — and the tail `len − len % 8` onward is
//! added sequentially. The scalar twin implements that same order, so SIMD
//! and scalar stay bitwise equal on every input length.

use std::sync::atomic::{AtomicU8, Ordering};

/// Dispatch state: 0 = undecided, 1 = SIMD, 2 = scalar.
static MODE: AtomicU8 = AtomicU8::new(0);

#[cfg(target_arch = "x86_64")]
fn detect() -> bool {
    is_x86_feature_detected!("avx2")
}

#[cfg(not(target_arch = "x86_64"))]
fn detect() -> bool {
    false
}

/// Whether the AVX2 path is in use: `true` when the CPU reports AVX2 at
/// runtime, the target is x86_64, the `GRAPHALIGN_NO_SIMD` environment
/// variable is unset, and [`set_force_scalar`] has not pinned the scalar
/// twin. The decision is made once and cached.
pub fn simd_active() -> bool {
    match MODE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = std::env::var_os("GRAPHALIGN_NO_SIMD").is_none() && detect();
            MODE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Test hook: `true` pins every kernel to the scalar twin; `false` clears
/// the pin and re-runs detection on the next call. Because both paths are
/// bitwise-identical this only affects speed, never results.
pub fn set_force_scalar(on: bool) {
    MODE.store(if on { 2 } else { 0 }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Scalar twins: the reference implementations that define the bit pattern.
// ---------------------------------------------------------------------------

/// Combines eight stripe accumulators in the fixed AVX2 reduction shape:
/// pairwise across the two vector registers, then across 128-bit halves,
/// then across lanes.
#[inline]
fn combine8(acc: [f64; 8]) -> f64 {
    let v = [acc[0] + acc[4], acc[1] + acc[5], acc[2] + acc[6], acc[3] + acc[7]];
    (v[0] + v[2]) + (v[1] + v[3])
}

/// Scalar twin of [`dot`]: 8-stripe lane-group accumulation.
pub fn dot_scalar(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len();
    let mut acc = [0.0f64; 8];
    let mut i = 0;
    while i + 8 <= n {
        for (k, a) in acc.iter_mut().enumerate() {
            *a += x[i + k] * y[i + k];
        }
        i += 8;
    }
    let mut total = combine8(acc);
    while i < n {
        total += x[i] * y[i];
        i += 1;
    }
    total
}

/// Scalar twin of [`sum`]: 8-stripe lane-group accumulation.
pub fn sum_scalar(x: &[f64]) -> f64 {
    let n = x.len();
    let mut acc = [0.0f64; 8];
    let mut i = 0;
    while i + 8 <= n {
        for (k, a) in acc.iter_mut().enumerate() {
            *a += x[i + k];
        }
        i += 8;
    }
    let mut total = combine8(acc);
    while i < n {
        total += x[i];
        i += 1;
    }
    total
}

/// Scalar twin of [`dist2_sq`]: 8-stripe lane-group accumulation of
/// `(x−y)²`.
pub fn dist2_sq_scalar(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len();
    let mut acc = [0.0f64; 8];
    let mut i = 0;
    while i + 8 <= n {
        for (k, a) in acc.iter_mut().enumerate() {
            let d = x[i + k] - y[i + k];
            *a += d * d;
        }
        i += 8;
    }
    let mut total = combine8(acc);
    while i < n {
        let d = x[i] - y[i];
        total += d * d;
        i += 1;
    }
    total
}

/// Scalar twin of [`dist2_sq_both`]: two independent 8-stripe reductions
/// over one pass.
pub fn dist2_sq_both_scalar(x: &[f64], y: &[f64]) -> (f64, f64) {
    let n = x.len();
    let mut am = [0.0f64; 8];
    let mut ap = [0.0f64; 8];
    let mut i = 0;
    while i + 8 <= n {
        for k in 0..8 {
            let d = x[i + k] - y[i + k];
            am[k] += d * d;
            let s = x[i + k] + y[i + k];
            ap[k] += s * s;
        }
        i += 8;
    }
    let mut minus = combine8(am);
    let mut plus = combine8(ap);
    while i < n {
        let d = x[i] - y[i];
        minus += d * d;
        let s = x[i] + y[i];
        plus += s * s;
        i += 1;
    }
    (minus, plus)
}

/// Scalar twin of [`axpy`]: element-wise `y[i] += alpha * x[i]`.
pub fn axpy_scalar(alpha: f64, x: &[f64], y: &mut [f64]) {
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scalar twin of [`scale`]: element-wise `x[i] *= alpha`.
pub fn scale_scalar(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Scalar twin of [`gemm_tile1`]: one output row segment against a packed
/// panel; each element accumulates ascending-`l` with a single running
/// accumulator seeded from the output.
pub fn gemm_tile1_scalar(a: &[f64], panel: &[f64], nc: usize, out: &mut [f64]) {
    debug_assert_eq!(panel.len(), a.len() * nc);
    debug_assert_eq!(out.len(), nc);
    for (j, o) in out.iter_mut().enumerate() {
        let mut acc = *o;
        for (l, &al) in a.iter().enumerate() {
            acc += al * panel[l * nc + j];
        }
        *o = acc;
    }
}

/// Scalar twin of [`gemm_tile4`]: four output row segments against one
/// packed panel, same per-element order as four [`gemm_tile1_scalar`] calls.
#[allow(clippy::too_many_arguments)]
pub fn gemm_tile4_scalar(
    a: [&[f64]; 4],
    panel: &[f64],
    nc: usize,
    o0: &mut [f64],
    o1: &mut [f64],
    o2: &mut [f64],
    o3: &mut [f64],
) {
    gemm_tile1_scalar(a[0], panel, nc, o0);
    gemm_tile1_scalar(a[1], panel, nc, o1);
    gemm_tile1_scalar(a[2], panel, nc, o2);
    gemm_tile1_scalar(a[3], panel, nc, o3);
}

// ---------------------------------------------------------------------------
// Micro-strip packed panels: the layout the blocked GEMM feeds the kernels.
// ---------------------------------------------------------------------------

/// Column width of one micro-strip inside a packed panel.
pub const STRIP: usize = 8;

/// Packs a `kc × nc` panel of `b` (rows `b[(k0+l)*ld + j0 ..]` for `l` in
/// `0..kc`, columns `j0..j0+nc`) into micro-strip layout: the panel is a
/// sequence of column strips of width [`STRIP`] (plus one `nc % STRIP`
/// remainder strip), each strip row-major — element `(l, j)` of strip `s`
/// lives at `s·kc·STRIP + l·w + (j − s·STRIP)` where `w` is the strip
/// width. The GEMM microkernels then read the panel purely sequentially,
/// which is what keeps them fast when the panel streams from L2/L3.
pub fn pack_panel(
    b: &[f64],
    ld: usize,
    k0: usize,
    j0: usize,
    kc: usize,
    nc: usize,
    dst: &mut [f64],
) {
    debug_assert!(dst.len() >= kc * nc, "pack_panel: destination too small");
    let mut off = 0;
    let mut js = 0;
    while js < nc {
        let w = STRIP.min(nc - js);
        let strip = &mut dst[off..off + kc * w];
        for (l, row) in strip.chunks_exact_mut(w).enumerate() {
            let src = (k0 + l) * ld + j0 + js;
            row.copy_from_slice(&b[src..src + w]);
        }
        off += kc * w;
        js += w;
    }
}

/// Scalar twin of [`gemm_tile1_packed`]: one output row segment against a
/// micro-strip packed panel; identical per-element ascending-`l` order as
/// [`gemm_tile1_scalar`] on the row-major layout.
pub fn gemm_tile1_packed_scalar(a: &[f64], panel: &[f64], nc: usize, out: &mut [f64]) {
    let kc = a.len();
    let mut off = 0;
    let mut js = 0;
    while js < nc {
        let w = STRIP.min(nc - js);
        let strip = &panel[off..off + kc * w];
        for (jj, o) in out[js..js + w].iter_mut().enumerate() {
            let mut acc = *o;
            for (l, &al) in a.iter().enumerate() {
                acc += al * strip[l * w + jj];
            }
            *o = acc;
        }
        off += kc * w;
        js += w;
    }
}

/// Scalar twin of [`gemm_tile4_packed`].
#[allow(clippy::too_many_arguments)]
pub fn gemm_tile4_packed_scalar(
    a: [&[f64]; 4],
    panel: &[f64],
    nc: usize,
    o0: &mut [f64],
    o1: &mut [f64],
    o2: &mut [f64],
    o3: &mut [f64],
) {
    gemm_tile1_packed_scalar(a[0], panel, nc, o0);
    gemm_tile1_packed_scalar(a[1], panel, nc, o1);
    gemm_tile1_packed_scalar(a[2], panel, nc, o2);
    gemm_tile1_packed_scalar(a[3], panel, nc, o3);
}

// ---------------------------------------------------------------------------
// AVX2 implementations (x86_64 only; callers dispatch through simd_active).
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    /// Reduces `acc0`/`acc1` (stripes 0..4 / 4..8) in the canonical order:
    /// `add(acc0, acc1)` gives lane `k = l_k + l_{k+4}`, halves add to
    /// `(v0+v2, v1+v3)`, lanes add to the total.
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    unsafe fn reduce8(acc0: __m256d, acc1: __m256d) -> f64 {
        let v = _mm256_add_pd(acc0, acc1);
        let lo = _mm256_castpd256_pd128(v);
        let hi = _mm256_extractf128_pd(v, 1);
        let s = _mm_add_pd(lo, hi);
        let s0 = _mm_cvtsd_f64(s);
        let s1 = _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
        s0 + s1
    }

    /// # Safety
    /// Requires AVX2; `x` and `y` must have equal lengths.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot(x: &[f64], y: &[f64]) -> f64 {
        let n = x.len();
        let (px, py) = (x.as_ptr(), y.as_ptr());
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut i = 0;
        while i + 8 <= n {
            acc0 = _mm256_add_pd(
                acc0,
                _mm256_mul_pd(_mm256_loadu_pd(px.add(i)), _mm256_loadu_pd(py.add(i))),
            );
            acc1 = _mm256_add_pd(
                acc1,
                _mm256_mul_pd(_mm256_loadu_pd(px.add(i + 4)), _mm256_loadu_pd(py.add(i + 4))),
            );
            i += 8;
        }
        let mut total = reduce8(acc0, acc1);
        while i < n {
            total += x[i] * y[i];
            i += 1;
        }
        total
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sum(x: &[f64]) -> f64 {
        let n = x.len();
        let px = x.as_ptr();
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut i = 0;
        while i + 8 <= n {
            acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(px.add(i)));
            acc1 = _mm256_add_pd(acc1, _mm256_loadu_pd(px.add(i + 4)));
            i += 8;
        }
        let mut total = reduce8(acc0, acc1);
        while i < n {
            total += x[i];
            i += 1;
        }
        total
    }

    /// # Safety
    /// Requires AVX2; `x` and `y` must have equal lengths.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dist2_sq(x: &[f64], y: &[f64]) -> f64 {
        let n = x.len();
        let (px, py) = (x.as_ptr(), y.as_ptr());
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut i = 0;
        while i + 8 <= n {
            let d0 = _mm256_sub_pd(_mm256_loadu_pd(px.add(i)), _mm256_loadu_pd(py.add(i)));
            let d1 = _mm256_sub_pd(_mm256_loadu_pd(px.add(i + 4)), _mm256_loadu_pd(py.add(i + 4)));
            acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(d0, d0));
            acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(d1, d1));
            i += 8;
        }
        let mut total = reduce8(acc0, acc1);
        while i < n {
            let d = x[i] - y[i];
            total += d * d;
            i += 1;
        }
        total
    }

    /// # Safety
    /// Requires AVX2; `x` and `y` must have equal lengths.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dist2_sq_both(x: &[f64], y: &[f64]) -> (f64, f64) {
        let n = x.len();
        let (px, py) = (x.as_ptr(), y.as_ptr());
        let mut am0 = _mm256_setzero_pd();
        let mut am1 = _mm256_setzero_pd();
        let mut ap0 = _mm256_setzero_pd();
        let mut ap1 = _mm256_setzero_pd();
        let mut i = 0;
        while i + 8 <= n {
            let x0 = _mm256_loadu_pd(px.add(i));
            let y0 = _mm256_loadu_pd(py.add(i));
            let x1 = _mm256_loadu_pd(px.add(i + 4));
            let y1 = _mm256_loadu_pd(py.add(i + 4));
            let d0 = _mm256_sub_pd(x0, y0);
            let d1 = _mm256_sub_pd(x1, y1);
            am0 = _mm256_add_pd(am0, _mm256_mul_pd(d0, d0));
            am1 = _mm256_add_pd(am1, _mm256_mul_pd(d1, d1));
            let s0 = _mm256_add_pd(x0, y0);
            let s1 = _mm256_add_pd(x1, y1);
            ap0 = _mm256_add_pd(ap0, _mm256_mul_pd(s0, s0));
            ap1 = _mm256_add_pd(ap1, _mm256_mul_pd(s1, s1));
            i += 8;
        }
        let mut minus = reduce8(am0, am1);
        let mut plus = reduce8(ap0, ap1);
        while i < n {
            let d = x[i] - y[i];
            minus += d * d;
            let s = x[i] + y[i];
            plus += s * s;
            i += 1;
        }
        (minus, plus)
    }

    /// # Safety
    /// Requires AVX2; `x` and `y` must have equal lengths.
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = x.len();
        let px = x.as_ptr();
        let py = y.as_mut_ptr();
        let va = _mm256_set1_pd(alpha);
        let mut i = 0;
        while i + 8 <= n {
            let y0 = _mm256_add_pd(
                _mm256_loadu_pd(py.add(i)),
                _mm256_mul_pd(va, _mm256_loadu_pd(px.add(i))),
            );
            let y1 = _mm256_add_pd(
                _mm256_loadu_pd(py.add(i + 4)),
                _mm256_mul_pd(va, _mm256_loadu_pd(px.add(i + 4))),
            );
            _mm256_storeu_pd(py.add(i), y0);
            _mm256_storeu_pd(py.add(i + 4), y1);
            i += 8;
        }
        if i + 4 <= n {
            let y0 = _mm256_add_pd(
                _mm256_loadu_pd(py.add(i)),
                _mm256_mul_pd(va, _mm256_loadu_pd(px.add(i))),
            );
            _mm256_storeu_pd(py.add(i), y0);
            i += 4;
        }
        while i < n {
            y[i] += alpha * x[i];
            i += 1;
        }
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn scale(alpha: f64, x: &mut [f64]) {
        let n = x.len();
        let px = x.as_mut_ptr();
        let va = _mm256_set1_pd(alpha);
        let mut i = 0;
        while i + 8 <= n {
            _mm256_storeu_pd(px.add(i), _mm256_mul_pd(va, _mm256_loadu_pd(px.add(i))));
            _mm256_storeu_pd(px.add(i + 4), _mm256_mul_pd(va, _mm256_loadu_pd(px.add(i + 4))));
            i += 8;
        }
        if i + 4 <= n {
            _mm256_storeu_pd(px.add(i), _mm256_mul_pd(va, _mm256_loadu_pd(px.add(i))));
            i += 4;
        }
        while i < n {
            x[i] *= alpha;
            i += 1;
        }
    }

    /// Single-row register-tiled GEMM microkernel: `out[j] += Σ_l a[l] ·
    /// panel[l·nc + j]` with the output segment held in registers across the
    /// whole `kc` loop (8 columns per step, 2 ymm accumulators), seeded from
    /// `out` so multi-strip accumulation keeps ascending-`l` order.
    ///
    /// # Safety
    /// Requires AVX2; `panel.len() == a.len() * nc`, `out.len() == nc`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn gemm_tile1(a: &[f64], panel: &[f64], nc: usize, out: &mut [f64]) {
        let kc = a.len();
        let pp = panel.as_ptr();
        let po = out.as_mut_ptr();
        let mut j = 0;
        while j + 8 <= nc {
            let mut acc0 = _mm256_loadu_pd(po.add(j));
            let mut acc1 = _mm256_loadu_pd(po.add(j + 4));
            for (l, &al) in a.iter().enumerate() {
                let va = _mm256_set1_pd(al);
                let base = pp.add(l * nc + j);
                acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(va, _mm256_loadu_pd(base)));
                acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(va, _mm256_loadu_pd(base.add(4))));
            }
            _mm256_storeu_pd(po.add(j), acc0);
            _mm256_storeu_pd(po.add(j + 4), acc1);
            j += 8;
        }
        if j + 4 <= nc {
            let mut acc0 = _mm256_loadu_pd(po.add(j));
            for (l, &al) in a.iter().enumerate() {
                let va = _mm256_set1_pd(al);
                acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(va, _mm256_loadu_pd(pp.add(l * nc + j))));
            }
            _mm256_storeu_pd(po.add(j), acc0);
            j += 4;
        }
        while j < nc {
            let mut acc = out[j];
            for l in 0..kc {
                acc += a[l] * panel[l * nc + j];
            }
            out[j] = acc;
            j += 1;
        }
    }

    /// Four-row register-tiled GEMM microkernel: a 4×8 block of outputs
    /// lives in 8 ymm accumulators across the whole `kc` loop, so each
    /// packed panel row is loaded once per four output rows and each output
    /// element is written exactly once per strip.
    ///
    /// # Safety
    /// Requires AVX2; all `a[r]` share one length `kc`, `panel.len() == kc *
    /// nc`, each output slice has length `nc`.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn gemm_tile4(
        a: [&[f64]; 4],
        panel: &[f64],
        nc: usize,
        o0: &mut [f64],
        o1: &mut [f64],
        o2: &mut [f64],
        o3: &mut [f64],
    ) {
        let kc = a[0].len();
        let pp = panel.as_ptr();
        let (a0, a1, a2, a3) = (a[0].as_ptr(), a[1].as_ptr(), a[2].as_ptr(), a[3].as_ptr());
        let (p0, p1, p2, p3) = (o0.as_mut_ptr(), o1.as_mut_ptr(), o2.as_mut_ptr(), o3.as_mut_ptr());
        let mut j = 0;
        while j + 8 <= nc {
            let mut c00 = _mm256_loadu_pd(p0.add(j));
            let mut c01 = _mm256_loadu_pd(p0.add(j + 4));
            let mut c10 = _mm256_loadu_pd(p1.add(j));
            let mut c11 = _mm256_loadu_pd(p1.add(j + 4));
            let mut c20 = _mm256_loadu_pd(p2.add(j));
            let mut c21 = _mm256_loadu_pd(p2.add(j + 4));
            let mut c30 = _mm256_loadu_pd(p3.add(j));
            let mut c31 = _mm256_loadu_pd(p3.add(j + 4));
            for l in 0..kc {
                let base = pp.add(l * nc + j);
                let b0 = _mm256_loadu_pd(base);
                let b1 = _mm256_loadu_pd(base.add(4));
                let v0 = _mm256_set1_pd(*a0.add(l));
                c00 = _mm256_add_pd(c00, _mm256_mul_pd(v0, b0));
                c01 = _mm256_add_pd(c01, _mm256_mul_pd(v0, b1));
                let v1 = _mm256_set1_pd(*a1.add(l));
                c10 = _mm256_add_pd(c10, _mm256_mul_pd(v1, b0));
                c11 = _mm256_add_pd(c11, _mm256_mul_pd(v1, b1));
                let v2 = _mm256_set1_pd(*a2.add(l));
                c20 = _mm256_add_pd(c20, _mm256_mul_pd(v2, b0));
                c21 = _mm256_add_pd(c21, _mm256_mul_pd(v2, b1));
                let v3 = _mm256_set1_pd(*a3.add(l));
                c30 = _mm256_add_pd(c30, _mm256_mul_pd(v3, b0));
                c31 = _mm256_add_pd(c31, _mm256_mul_pd(v3, b1));
            }
            _mm256_storeu_pd(p0.add(j), c00);
            _mm256_storeu_pd(p0.add(j + 4), c01);
            _mm256_storeu_pd(p1.add(j), c10);
            _mm256_storeu_pd(p1.add(j + 4), c11);
            _mm256_storeu_pd(p2.add(j), c20);
            _mm256_storeu_pd(p2.add(j + 4), c21);
            _mm256_storeu_pd(p3.add(j), c30);
            _mm256_storeu_pd(p3.add(j + 4), c31);
            j += 8;
        }
        if j < nc {
            gemm_tile1(a[0], panel, nc, o0);
            gemm_tile1(a[1], panel, nc, o1);
            gemm_tile1(a[2], panel, nc, o2);
            gemm_tile1(a[3], panel, nc, o3);
            // gemm_tile1 re-processed the leading 8-wide columns too — undo
            // is impossible, so this branch must never be taken with j > 0.
            unreachable!("gemm_tile4 tail fell through with a partial prefix");
        }
    }

    /// Single-row microkernel over a micro-strip packed panel (sequential
    /// panel reads; see [`super::pack_panel`] for the layout).
    ///
    /// # Safety
    /// Requires AVX2; `panel` must hold a `a.len() × nc` micro-strip packed
    /// panel and `out` must have length `nc`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn gemm_tile1_packed(a: &[f64], panel: &[f64], nc: usize, out: &mut [f64]) {
        let kc = a.len();
        let po = out.as_mut_ptr();
        let mut off = 0;
        let mut js = 0;
        while js + 8 <= nc {
            let sp = panel.as_ptr().add(off);
            let mut acc0 = _mm256_loadu_pd(po.add(js));
            let mut acc1 = _mm256_loadu_pd(po.add(js + 4));
            for (l, &al) in a.iter().enumerate() {
                let va = _mm256_set1_pd(al);
                let base = sp.add(l * 8);
                acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(va, _mm256_loadu_pd(base)));
                acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(va, _mm256_loadu_pd(base.add(4))));
            }
            _mm256_storeu_pd(po.add(js), acc0);
            _mm256_storeu_pd(po.add(js + 4), acc1);
            off += kc * 8;
            js += 8;
        }
        if js < nc {
            let w = nc - js;
            let strip = &panel[off..off + kc * w];
            for (jj, o) in out[js..js + w].iter_mut().enumerate() {
                let mut acc = *o;
                for (l, &al) in a.iter().enumerate() {
                    acc += al * strip[l * w + jj];
                }
                *o = acc;
            }
        }
    }

    /// Four-row microkernel over a micro-strip packed panel: the 4×8 output
    /// tile lives in 8 ymm accumulators for the whole shared-dimension loop
    /// and the packed strip is read purely sequentially.
    ///
    /// # Safety
    /// Requires AVX2; all `a[r]` share one length, `panel` holds the
    /// micro-strip packed panel, each output slice has length `nc`.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn gemm_tile4_packed(
        a: [&[f64]; 4],
        panel: &[f64],
        nc: usize,
        o0: &mut [f64],
        o1: &mut [f64],
        o2: &mut [f64],
        o3: &mut [f64],
    ) {
        let kc = a[0].len();
        let (a0, a1, a2, a3) = (a[0].as_ptr(), a[1].as_ptr(), a[2].as_ptr(), a[3].as_ptr());
        let (p0, p1, p2, p3) = (o0.as_mut_ptr(), o1.as_mut_ptr(), o2.as_mut_ptr(), o3.as_mut_ptr());
        let mut off = 0;
        let mut js = 0;
        while js + 8 <= nc {
            let sp = panel.as_ptr().add(off);
            let mut c00 = _mm256_loadu_pd(p0.add(js));
            let mut c01 = _mm256_loadu_pd(p0.add(js + 4));
            let mut c10 = _mm256_loadu_pd(p1.add(js));
            let mut c11 = _mm256_loadu_pd(p1.add(js + 4));
            let mut c20 = _mm256_loadu_pd(p2.add(js));
            let mut c21 = _mm256_loadu_pd(p2.add(js + 4));
            let mut c30 = _mm256_loadu_pd(p3.add(js));
            let mut c31 = _mm256_loadu_pd(p3.add(js + 4));
            for l in 0..kc {
                let base = sp.add(l * 8);
                let b0 = _mm256_loadu_pd(base);
                let b1 = _mm256_loadu_pd(base.add(4));
                let v0 = _mm256_set1_pd(*a0.add(l));
                c00 = _mm256_add_pd(c00, _mm256_mul_pd(v0, b0));
                c01 = _mm256_add_pd(c01, _mm256_mul_pd(v0, b1));
                let v1 = _mm256_set1_pd(*a1.add(l));
                c10 = _mm256_add_pd(c10, _mm256_mul_pd(v1, b0));
                c11 = _mm256_add_pd(c11, _mm256_mul_pd(v1, b1));
                let v2 = _mm256_set1_pd(*a2.add(l));
                c20 = _mm256_add_pd(c20, _mm256_mul_pd(v2, b0));
                c21 = _mm256_add_pd(c21, _mm256_mul_pd(v2, b1));
                let v3 = _mm256_set1_pd(*a3.add(l));
                c30 = _mm256_add_pd(c30, _mm256_mul_pd(v3, b0));
                c31 = _mm256_add_pd(c31, _mm256_mul_pd(v3, b1));
            }
            _mm256_storeu_pd(p0.add(js), c00);
            _mm256_storeu_pd(p0.add(js + 4), c01);
            _mm256_storeu_pd(p1.add(js), c10);
            _mm256_storeu_pd(p1.add(js + 4), c11);
            _mm256_storeu_pd(p2.add(js), c20);
            _mm256_storeu_pd(p2.add(js + 4), c21);
            _mm256_storeu_pd(p3.add(js), c30);
            _mm256_storeu_pd(p3.add(js + 4), c31);
            off += kc * 8;
            js += 8;
        }
        if js < nc {
            let w = nc - js;
            let strip = &panel[off..off + kc * w];
            for (r, out) in [o0, o1, o2, o3].into_iter().enumerate() {
                let ar = a[r];
                for (jj, o) in out[js..js + w].iter_mut().enumerate() {
                    let mut acc = *o;
                    for (l, &al) in ar.iter().enumerate() {
                        acc += al * strip[l * w + jj];
                    }
                    *o = acc;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Dispatchers: the public entry points vec_ops and the matrix kernels call.
// ---------------------------------------------------------------------------

/// Dot product in the lane-group order (see module docs).
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: AVX2 availability checked by simd_active().
        return unsafe { avx2::dot(x, y) };
    }
    dot_scalar(x, y)
}

/// Sum of all entries in the lane-group order.
#[inline]
pub fn sum(x: &[f64]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: AVX2 availability checked by simd_active().
        return unsafe { avx2::sum(x) };
    }
    sum_scalar(x)
}

/// Squared Euclidean distance in the lane-group order.
#[inline]
pub fn dist2_sq(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: AVX2 availability checked by simd_active().
        return unsafe { avx2::dist2_sq(x, y) };
    }
    dist2_sq_scalar(x, y)
}

/// Both squared distances `(‖x − y‖², ‖x + y‖²)` in one pass, each in the
/// lane-group order.
#[inline]
pub fn dist2_sq_both(x: &[f64], y: &[f64]) -> (f64, f64) {
    debug_assert_eq!(x.len(), y.len());
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: AVX2 availability checked by simd_active().
        return unsafe { avx2::dist2_sq_both(x, y) };
    }
    dist2_sq_both_scalar(x, y)
}

/// In-place `y ← y + alpha · x` (element-wise; order-free).
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: AVX2 availability checked by simd_active().
        unsafe { avx2::axpy(alpha, x, y) };
        return;
    }
    axpy_scalar(alpha, x, y);
}

/// In-place `x ← alpha · x` (element-wise; order-free).
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: AVX2 availability checked by simd_active().
        unsafe { avx2::scale(alpha, x) };
        return;
    }
    scale_scalar(alpha, x);
}

/// Single-row GEMM microkernel over one packed panel (see
/// [`gemm_tile1_scalar`] for the order contract).
#[inline]
pub fn gemm_tile1(a: &[f64], panel: &[f64], nc: usize, out: &mut [f64]) {
    debug_assert_eq!(panel.len(), a.len() * nc);
    debug_assert_eq!(out.len(), nc);
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: AVX2 availability checked by simd_active(); lengths
        // validated above.
        unsafe { avx2::gemm_tile1(a, panel, nc, out) };
        return;
    }
    gemm_tile1_scalar(a, panel, nc, out);
}

/// Four-row GEMM microkernel over one packed panel. When `nc` is not a
/// multiple of 8 the whole tile runs through [`gemm_tile1`] per row (the
/// register-tiled AVX2 path requires full 8-wide column groups).
#[allow(clippy::too_many_arguments)]
pub fn gemm_tile4(
    a: [&[f64]; 4],
    panel: &[f64],
    nc: usize,
    o0: &mut [f64],
    o1: &mut [f64],
    o2: &mut [f64],
    o3: &mut [f64],
) {
    let kc = a[0].len();
    debug_assert!(a.iter().all(|s| s.len() == kc), "gemm_tile4: ragged lhs segments");
    debug_assert_eq!(panel.len(), kc * nc, "gemm_tile4: panel length mismatch");
    debug_assert!(
        o0.len() == nc && o1.len() == nc && o2.len() == nc && o3.len() == nc,
        "gemm_tile4: output length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    if simd_active() && nc.is_multiple_of(8) {
        // SAFETY: AVX2 availability checked by simd_active(); lengths
        // validated above; nc is a multiple of 8 so the tail branch inside
        // the kernel is unreachable.
        unsafe { avx2::gemm_tile4(a, panel, nc, o0, o1, o2, o3) };
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        gemm_tile1(a[0], panel, nc, o0);
        gemm_tile1(a[1], panel, nc, o1);
        gemm_tile1(a[2], panel, nc, o2);
        gemm_tile1(a[3], panel, nc, o3);
        return;
    }
    gemm_tile4_scalar(a, panel, nc, o0, o1, o2, o3);
}

/// Single-row GEMM microkernel over a micro-strip packed panel (see
/// [`pack_panel`]); bit-identical to [`gemm_tile1`] on the equivalent
/// row-major panel.
#[inline]
pub fn gemm_tile1_packed(a: &[f64], panel: &[f64], nc: usize, out: &mut [f64]) {
    debug_assert!(panel.len() >= a.len() * nc, "gemm_tile1_packed: panel too small");
    debug_assert_eq!(out.len(), nc, "gemm_tile1_packed: output length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: AVX2 availability checked by simd_active(); lengths
        // validated above.
        unsafe { avx2::gemm_tile1_packed(a, panel, nc, out) };
        return;
    }
    gemm_tile1_packed_scalar(a, panel, nc, out);
}

/// Four-row GEMM microkernel over a micro-strip packed panel; bit-identical
/// to [`gemm_tile4`] on the equivalent row-major panel.
#[allow(clippy::too_many_arguments)]
pub fn gemm_tile4_packed(
    a: [&[f64]; 4],
    panel: &[f64],
    nc: usize,
    o0: &mut [f64],
    o1: &mut [f64],
    o2: &mut [f64],
    o3: &mut [f64],
) {
    let kc = a[0].len();
    debug_assert!(a.iter().all(|s| s.len() == kc), "gemm_tile4_packed: ragged lhs segments");
    debug_assert!(panel.len() >= kc * nc, "gemm_tile4_packed: panel too small");
    debug_assert!(
        o0.len() == nc && o1.len() == nc && o2.len() == nc && o3.len() == nc,
        "gemm_tile4_packed: output length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: AVX2 availability checked by simd_active(); lengths
        // validated above.
        unsafe { avx2::gemm_tile4_packed(a, panel, nc, o0, o1, o2, o3) };
        return;
    }
    gemm_tile4_packed_scalar(a, panel, nc, o0, o1, o2, o3);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_of(n: usize, seed: u64) -> Vec<f64> {
        (0..n).map(|i| (((i as u64 * 2654435761 + seed) % 1000) as f64 - 500.0) / 251.0).collect()
    }

    /// Every dispatcher must agree with its scalar twin bit for bit on all
    /// remainder widths; on AVX2 hardware this exercises the intrinsics,
    /// elsewhere it is a self-consistency check.
    #[test]
    fn simd_matches_scalar_twins_for_all_remainders() {
        for n in 0..40 {
            let x = vec_of(n, 1);
            let y = vec_of(n, 2);
            assert_eq!(dot(&x, &y).to_bits(), dot_scalar(&x, &y).to_bits(), "dot n={n}");
            assert_eq!(sum(&x).to_bits(), sum_scalar(&x).to_bits(), "sum n={n}");
            assert_eq!(
                dist2_sq(&x, &y).to_bits(),
                dist2_sq_scalar(&x, &y).to_bits(),
                "dist2_sq n={n}"
            );
            let (m, p) = dist2_sq_both(&x, &y);
            let (ms, ps) = dist2_sq_both_scalar(&x, &y);
            assert_eq!((m.to_bits(), p.to_bits()), (ms.to_bits(), ps.to_bits()), "both n={n}");
            let mut ya = vec_of(n, 3);
            let mut yb = ya.clone();
            axpy(0.37, &x, &mut ya);
            axpy_scalar(0.37, &x, &mut yb);
            assert!(ya.iter().zip(&yb).all(|(a, b)| a.to_bits() == b.to_bits()), "axpy n={n}");
            scale(-1.25, &mut ya);
            scale_scalar(-1.25, &mut yb);
            assert!(ya.iter().zip(&yb).all(|(a, b)| a.to_bits() == b.to_bits()), "scale n={n}");
        }
    }

    #[test]
    fn gemm_tiles_match_scalar_twins_bitwise() {
        for nc in [1usize, 3, 4, 7, 8, 11, 16, 24] {
            for kc in [0usize, 1, 2, 5, 16] {
                let panel = vec_of(kc * nc, 9);
                let segs: Vec<Vec<f64>> = (0..4).map(|r| vec_of(kc, 10 + r as u64)).collect();
                let mut simd_rows: Vec<Vec<f64>> =
                    (0..4).map(|r| vec_of(nc, 20 + r as u64)).collect();
                let mut ref_rows = simd_rows.clone();
                {
                    let [s0, s1, s2, s3] = &mut simd_rows[..] else { unreachable!() };
                    gemm_tile4(
                        [&segs[0], &segs[1], &segs[2], &segs[3]],
                        &panel,
                        nc,
                        s0,
                        s1,
                        s2,
                        s3,
                    );
                }
                {
                    let [r0, r1, r2, r3] = &mut ref_rows[..] else { unreachable!() };
                    gemm_tile4_scalar(
                        [&segs[0], &segs[1], &segs[2], &segs[3]],
                        &panel,
                        nc,
                        r0,
                        r1,
                        r2,
                        r3,
                    );
                }
                for (s, r) in simd_rows.iter().flatten().zip(ref_rows.iter().flatten()) {
                    assert_eq!(s.to_bits(), r.to_bits(), "tile4 nc={nc} kc={kc}");
                }
                let mut one = vec_of(nc, 30);
                let mut one_ref = one.clone();
                gemm_tile1(&segs[0], &panel, nc, &mut one);
                gemm_tile1_scalar(&segs[0], &panel, nc, &mut one_ref);
                for (s, r) in one.iter().zip(&one_ref) {
                    assert_eq!(s.to_bits(), r.to_bits(), "tile1 nc={nc} kc={kc}");
                }
            }
        }
    }

    #[test]
    fn packed_kernels_match_row_major_kernels_bitwise() {
        // Pack a row-major panel into micro-strips and require bitwise
        // agreement with the row-major kernels (and the scalar twins) for
        // widths exercising full strips, the remainder strip, and both.
        for nc in [1usize, 5, 8, 13, 16, 24, 29] {
            for kc in [0usize, 1, 3, 7, 32] {
                let row_major = vec_of(kc * nc, 40);
                let mut packed = vec![0.0; kc * nc];
                pack_panel(&row_major, nc, 0, 0, kc, nc, &mut packed);
                let segs: Vec<Vec<f64>> = (0..4).map(|r| vec_of(kc, 50 + r as u64)).collect();
                let mut got: Vec<Vec<f64>> = (0..4).map(|r| vec_of(nc, 60 + r as u64)).collect();
                let mut want = got.clone();
                {
                    let [g0, g1, g2, g3] = &mut got[..] else { unreachable!() };
                    gemm_tile4_packed(
                        [&segs[0], &segs[1], &segs[2], &segs[3]],
                        &packed,
                        nc,
                        g0,
                        g1,
                        g2,
                        g3,
                    );
                }
                {
                    let [w0, w1, w2, w3] = &mut want[..] else { unreachable!() };
                    gemm_tile4(
                        [&segs[0], &segs[1], &segs[2], &segs[3]],
                        &row_major,
                        nc,
                        w0,
                        w1,
                        w2,
                        w3,
                    );
                }
                for (g, w) in got.iter().flatten().zip(want.iter().flatten()) {
                    assert_eq!(g.to_bits(), w.to_bits(), "tile4_packed nc={nc} kc={kc}");
                }
                let mut one = vec_of(nc, 70);
                let mut one_scalar = one.clone();
                let mut one_row_major = one.clone();
                gemm_tile1_packed(&segs[0], &packed, nc, &mut one);
                gemm_tile1_packed_scalar(&segs[0], &packed, nc, &mut one_scalar);
                gemm_tile1(&segs[0], &row_major, nc, &mut one_row_major);
                for ((g, s), w) in one.iter().zip(&one_scalar).zip(&one_row_major) {
                    assert_eq!(g.to_bits(), s.to_bits(), "tile1_packed scalar nc={nc} kc={kc}");
                    assert_eq!(g.to_bits(), w.to_bits(), "tile1_packed row-major nc={nc} kc={kc}");
                }
            }
        }
    }

    #[test]
    fn force_scalar_pins_the_twin() {
        let x = vec_of(33, 5);
        let y = vec_of(33, 6);
        let before = dot(&x, &y);
        set_force_scalar(true);
        assert!(!simd_active());
        let pinned = dot(&x, &y);
        set_force_scalar(false);
        assert_eq!(before.to_bits(), pinned.to_bits(), "paths must agree bitwise");
    }
}
