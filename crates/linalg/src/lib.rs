//! Dense and sparse linear-algebra substrate for the `graphalign` workspace.
//!
//! The graph-alignment algorithms reproduced from the EDBT 2023 study lean on a
//! fairly wide slice of numerical linear algebra: symmetric eigendecompositions
//! (GRASP, CONE), singular value decompositions (REGAL, LREA, CONE's Procrustes
//! step), power iterations (IsoRank, NSD, LREA), Lanczos iterations for sparse
//! spectra, and entropic optimal transport (GWL, S-GWL, CONE). Mature Rust
//! crates for sparse symmetric eigenproblems and dense LAPACK-grade kernels are
//! not available in this build environment, so this crate implements the whole
//! substrate from scratch:
//!
//! * [`dense::DenseMatrix`] — row-major `f64` matrices with the usual algebra.
//! * [`sparse::CsrMatrix`] — compressed sparse row matrices with SpMV/SpMM.
//! * [`qr`] — Householder QR factorization.
//! * [`eigen`] — exact symmetric eigendecomposition (Householder
//!   tridiagonalization followed by implicit-shift QL).
//! * [`lanczos`] — iterative top-/bottom-k eigenpairs of large sparse
//!   symmetric operators with full reorthogonalization.
//! * [`svd`] — thin singular value decomposition.
//! * [`power`] — power iteration for leading eigenvectors.
//! * [`sinkhorn`] — entropic optimal transport (Sinkhorn) and the proximal
//!   point wrapper used by the Gromov–Wasserstein solvers.
//! * [`vec_ops`] — small dense-vector helpers shared by the iterative solvers,
//!   including the GEMM microkernels behind the blocked products.
//! * [`simd`] — runtime-dispatched AVX2 microkernels with bit-identical
//!   scalar twins (the lane-group reduction order contract lives here).
//! * [`lowrank::LowRankSim`] — implicit factored similarity matrices with
//!   row-scan/argmax/top-k kernels that never materialize the product.
//! * [`similarity::Similarity`] — the dense/low-rank/sparse representation
//!   enum the aligners hand to the assignment layer ("pipeline currency"),
//!   with the single telemetry-audited [`similarity::Similarity::to_dense`]
//!   densification choke point.
//! * [`workspace::Workspace`] — a scratch-buffer pool that lets hot loops
//!   (and the `_into` kernel variants) reuse allocations across iterations;
//!   reuses are tallied in telemetry as `allocs_saved`/`alloc_bytes_saved`.
//!
//! # Conventions
//!
//! Dimension mismatches are programmer errors and panic with a descriptive
//! message; genuinely runtime-dependent failures (non-convergence, singular
//! inputs) are reported through [`LinalgError`].

// The eigen/QR/Sinkhorn routines are faithful transcriptions of classical
// index-based numerical algorithms (EISPACK tred2/tql2, Householder QR);
// rewriting their coupled index loops as iterator chains obscures the
// correspondence with the reference formulations.
#![allow(clippy::needless_range_loop)]

pub mod dense;
pub mod eigen;
pub mod lanczos;
pub mod landmark;
pub mod lowrank;
pub mod power;
pub mod propagation;
pub mod qr;
pub mod serialize;
pub mod simd;
pub mod similarity;
pub mod sinkhorn;
pub mod sparse;
pub mod svd;
pub mod vec_ops;
pub mod workspace;

pub use dense::DenseMatrix;
pub use landmark::LandmarkSinkhorn;
pub use lowrank::{LowRankKernel, LowRankSim};
pub use propagation::{propagate_features, PropagationParams};
pub use similarity::Similarity;
pub use sparse::CsrMatrix;
pub use workspace::Workspace;

/// Errors produced by the numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// An iterative method failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the routine that failed.
        routine: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// The input matrix was singular (or numerically so) where an invertible
    /// matrix was required.
    Singular {
        /// Name of the routine that failed.
        routine: &'static str,
    },
    /// The input contained NaN or infinite entries.
    NotFinite {
        /// Name of the routine that rejected the input.
        routine: &'static str,
    },
    /// The routine was stopped cooperatively by the cell execution budget
    /// ([`graphalign_par::budget`]): the deadline passed or the budget was
    /// cancelled between iterations. Carries the number of iterations that
    /// completed before the interruption.
    Interrupted {
        /// Name of the routine that was interrupted.
        routine: &'static str,
        /// Iterations completed before the budget expired.
        iterations: usize,
    },
}

impl LinalgError {
    /// Whether this error reports a cooperative budget interruption (the
    /// harness classifies these as timeouts, not numerical failures).
    pub fn is_interrupted(&self) -> bool {
        matches!(self, LinalgError::Interrupted { .. })
    }
}

/// Returns `Err(Interrupted)` when the current cell budget has expired;
/// the iterative solvers call this once per outer iteration. The
/// interruption is also reported to the telemetry sink, so solvers whose
/// errors a caller swallows (e.g. Lanczos inside S-GWL's Fiedler fallback)
/// still leave a visible `interrupted` event.
pub(crate) fn check_budget(routine: &'static str, iterations: usize) -> Result<(), LinalgError> {
    if graphalign_par::budget::exceeded() {
        graphalign_par::telemetry::record(
            routine,
            graphalign_par::telemetry::Convergence::interrupted(iterations, 0.0),
        );
        Err(LinalgError::Interrupted { routine, iterations })
    } else {
        Ok(())
    }
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::NoConvergence { routine, iterations } => {
                write!(f, "{routine}: no convergence after {iterations} iterations")
            }
            LinalgError::Singular { routine } => write!(f, "{routine}: singular input"),
            LinalgError::NotFinite { routine } => {
                write!(f, "{routine}: input contains NaN or infinite entries")
            }
            LinalgError::Interrupted { routine, iterations } => {
                write!(f, "{routine}: interrupted by cell budget after {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// A linear operator on `R^n`, abstracting over dense and sparse matrices so
/// iterative methods ([`lanczos`], [`power`]) can run on either, or on
/// matrix-free operators such as the normalized Laplacian `I - D^{-1/2} A D^{-1/2}`
/// without materializing it.
pub trait LinearOp {
    /// Dimension of the (square) operator.
    fn dim(&self) -> usize;
    /// Computes `out = M * x`.
    fn apply(&self, x: &[f64], out: &mut [f64]);
}

impl LinearOp for DenseMatrix {
    fn dim(&self) -> usize {
        assert_eq!(self.rows(), self.cols(), "LinearOp requires a square matrix");
        self.rows()
    }

    fn apply(&self, x: &[f64], out: &mut [f64]) {
        self.mul_vec_into(x, out);
    }
}

impl LinearOp for CsrMatrix {
    fn dim(&self) -> usize {
        assert_eq!(self.rows(), self.cols(), "LinearOp requires a square matrix");
        self.rows()
    }

    fn apply(&self, x: &[f64], out: &mut [f64]) {
        self.mul_vec_into(x, out);
    }
}

/// A shifted/scaled operator `alpha * M + beta * I`, useful for turning
/// "smallest eigenvalues" problems into "largest eigenvalues" problems
/// (e.g. the bottom of a normalized-Laplacian spectrum, whose eigenvalues lie
/// in `[0, 2]`, via `2I - L`).
pub struct ShiftedOp<'a, M: LinearOp + ?Sized> {
    inner: &'a M,
    alpha: f64,
    beta: f64,
}

impl<'a, M: LinearOp + ?Sized> ShiftedOp<'a, M> {
    /// Creates the operator `alpha * M + beta * I`.
    pub fn new(inner: &'a M, alpha: f64, beta: f64) -> Self {
        Self { inner, alpha, beta }
    }
}

impl<M: LinearOp + ?Sized> LinearOp for ShiftedOp<'_, M> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn apply(&self, x: &[f64], out: &mut [f64]) {
        self.inner.apply(x, out);
        for (o, &xi) in out.iter_mut().zip(x) {
            *o = self.alpha * *o + self.beta * xi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shifted_op_applies_alpha_m_plus_beta_i() {
        let m = DenseMatrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]);
        let op = ShiftedOp::new(&m, -1.0, 2.0);
        let mut out = vec![0.0; 2];
        op.apply(&[1.0, 1.0], &mut out);
        // -1 * [2, 3] + 2 * [1, 1] = [0, -1]
        assert_eq!(out, vec![0.0, -1.0]);
    }

    #[test]
    fn error_display_is_descriptive() {
        let e = LinalgError::NoConvergence { routine: "tql2", iterations: 30 };
        assert_eq!(e.to_string(), "tql2: no convergence after 30 iterations");
        let e = LinalgError::Singular { routine: "pinv" };
        assert_eq!(e.to_string(), "pinv: singular input");
        let e = LinalgError::NotFinite { routine: "svd" };
        assert!(e.to_string().contains("NaN"));
        let e = LinalgError::Interrupted { routine: "sinkhorn", iterations: 42 };
        assert_eq!(e.to_string(), "sinkhorn: interrupted by cell budget after 42 iterations");
        assert!(e.is_interrupted());
        assert!(!LinalgError::Singular { routine: "pinv" }.is_interrupted());
    }
}
