//! Entropic optimal transport (Sinkhorn) and the proximal-point wrapper used
//! by the Gromov–Wasserstein alignment algorithms (GWL, S-GWL) and CONE's
//! Wasserstein step.
//!
//! Given a cost matrix `C` and marginals `μ, ν`, the entropic OT problem
//! `min_{T ∈ Π(μ,ν)} ⟨C, T⟩ − ε H(T)` is solved by alternating scalings of
//! the Gibbs kernel `K = exp(−C/ε)`. All computations run in the standard
//! (non-log) domain with kernel clamping, which is adequate at the ε values
//! the paper's methods use (`β ∈ {0.025, 0.1}` on normalized cost matrices).

use crate::dense::DenseMatrix;
use crate::LinalgError;
use graphalign_par as par;
use graphalign_par::telemetry::{self, Convergence};

/// Kernel clamp floor: `exp(-C/ε)` values are clamped up to this to keep the
/// scalings finite. A kernel row/column entirely at the floor has underflowed
/// — ε is too small for the cost scale — and Sinkhorn would stall on it.
pub(crate) const KERNEL_FLOOR: f64 = 1e-300;

/// Returns an error when some kernel row (or column) with positive marginal
/// mass has every entry at the underflow floor: the scaling for that index
/// cannot move mass anywhere, so the marginal constraint is unsatisfiable in
/// finite arithmetic and iteration would silently stall (formerly `u[i]` was
/// set to `0`, returning a plan that violates the requested marginals).
fn check_kernel_support(
    k: &DenseMatrix,
    mu: &[f64],
    nu: &[f64],
    routine: &'static str,
) -> Result<(), LinalgError> {
    let (m, n) = k.shape();
    let mut col_live = vec![false; n];
    for i in 0..m {
        let row = k.row(i);
        let mut row_live = false;
        for (j, &v) in row.iter().enumerate() {
            if v > KERNEL_FLOOR {
                row_live = true;
                col_live[j] = true;
            }
        }
        if !row_live && mu[i] > 0.0 {
            return Err(LinalgError::Singular { routine });
        }
    }
    for j in 0..n {
        if !col_live[j] && nu[j] > 0.0 {
            return Err(LinalgError::Singular { routine });
        }
    }
    Ok(())
}

/// Scaling update `u ← μ ./ (K v)` shared by [`sinkhorn`] and
/// [`proximal_step`]; an exactly-zero denominator against positive target
/// mass means the kernel support degenerated mid-iteration (underflow), which
/// is reported instead of silently zeroing the row.
pub(crate) fn scaling_update(
    target: &[f64],
    denom: &[f64],
    out: &mut [f64],
    routine: &'static str,
) -> Result<(), LinalgError> {
    for ((o, &t), &d) in out.iter_mut().zip(target).zip(denom) {
        if d > 0.0 {
            *o = t / d;
        } else if t > 0.0 {
            return Err(LinalgError::Singular { routine });
        } else {
            *o = 0.0;
        }
    }
    Ok(())
}

/// Assembles `T = diag(u) K diag(v)` in place, in parallel over row blocks.
fn scale_plan(t: &mut DenseMatrix, u: &[f64], v: &[f64]) {
    let n = t.cols();
    par::for_each_row_block_mut(t.as_mut_slice(), n.max(1), n, |rows, block| {
        for (off, row) in block.chunks_mut(n.max(1)).enumerate() {
            let ui = u[rows.start + off];
            for (val, &vj) in row.iter_mut().zip(v) {
                *val *= ui * vj;
            }
        }
    });
}

/// Configuration for the Sinkhorn solver.
#[derive(Debug, Clone, Copy)]
pub struct SinkhornParams {
    /// Entropic regularization strength ε (paper: β).
    pub epsilon: f64,
    /// Maximum scaling iterations.
    pub max_iter: usize,
    /// L1 tolerance on the row-marginal violation.
    pub tol: f64,
}

impl Default for SinkhornParams {
    fn default() -> Self {
        Self { epsilon: 0.1, max_iter: 200, tol: 1e-6 }
    }
}

/// Shared scaling loop of [`sinkhorn`] and [`proximal_step`]: alternating
/// `u`/`v` updates until the row-marginal violation drops below
/// `params.tol`, the iteration cap is hit, or the cell budget expires.
/// Reports how it stopped (and, in trace mode, the per-sweep violations) to
/// the telemetry sink — falling off `max_iter` used to be indistinguishable
/// from a tolerance stop here.
fn scaling_loop(
    k: &DenseMatrix,
    mu: &[f64],
    nu: &[f64],
    params: &SinkhornParams,
    routine: &'static str,
) -> Result<(Vec<f64>, Vec<f64>, Convergence), LinalgError> {
    let (m, n) = k.shape();
    let mut u = vec![1.0; m];
    let mut v = vec![1.0; n];
    let mut iterations = 0;
    let mut last_violation = 0.0;
    let mut hit_tol = false;
    // Both per-sweep temporaries (`K v` and `Kᵀ u`) come from a workspace:
    // the first sweep allocates them, every later sweep reuses, so the inner
    // loop performs zero heap allocations after warm-up (visible in the
    // `allocs_saved` telemetry counter).
    let mut ws = crate::Workspace::new();
    for it in 0..params.max_iter {
        crate::check_budget(routine, it)?;
        telemetry::count_sinkhorn_sweep();
        iterations = it + 1;
        // u ← μ ./ (K v)
        let mut kv = ws.take(m);
        k.mul_vec_into(&v, &mut kv);
        scaling_update(mu, &kv, &mut u, routine)?;
        // v ← ν ./ (Kᵀ u)
        let mut ktu = ws.take(n);
        k.tr_mul_vec_into(&u, &mut ktu);
        scaling_update(nu, &ktu, &mut v, routine)?;
        ws.give(ktu);
        if !crate::vec_ops::all_finite(&u) || !crate::vec_ops::all_finite(&v) {
            return Err(LinalgError::NotFinite { routine });
        }
        // Row-marginal violation (reusing the `K v` buffer within the sweep).
        k.mul_vec_into(&v, &mut kv);
        let violation = par::sum_indexed(m, 1, |i| (u[i] * kv[i] - mu[i]).abs());
        ws.give(kv);
        last_violation = violation;
        telemetry::record_residual(routine, violation);
        if violation < params.tol {
            hit_tol = true;
            break;
        }
    }
    let convergence = if hit_tol {
        Convergence::tolerance(iterations, last_violation)
    } else {
        Convergence::max_iter(iterations, last_violation)
    };
    telemetry::record(routine, convergence);
    Ok((u, v, convergence))
}

/// Solves entropic OT for cost `c` with marginals `mu` (rows) and `nu`
/// (columns), returning the transport plan `T` with `T 1 = μ`, `Tᵀ 1 = ν`
/// together with how the scaling loop stopped.
///
/// # Errors
/// Returns [`LinalgError::Singular`] when the Gibbs kernel has a row or
/// column with positive marginal mass whose entries all underflowed (ε too
/// small for the cost scale — the marginal is unsatisfiable and iteration
/// would stall), [`LinalgError::NotFinite`] if the scalings blow up, and
/// [`LinalgError::Interrupted`] when the cell execution budget expires
/// between scaling iterations.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn sinkhorn(
    c: &DenseMatrix,
    mu: &[f64],
    nu: &[f64],
    params: &SinkhornParams,
) -> Result<(DenseMatrix, Convergence), LinalgError> {
    let (m, n) = c.shape();
    assert_eq!(mu.len(), m, "sinkhorn: mu length mismatch");
    assert_eq!(nu.len(), n, "sinkhorn: nu length mismatch");
    // Gibbs kernel, shifted by the minimum cost per problem for stability:
    // exp(-(C - min C)/ε) differs from exp(-C/ε) by a constant factor that
    // the scalings absorb.
    let cmin = c.as_slice().iter().copied().fold(f64::INFINITY, f64::min);
    let mut k = c.clone();
    let eps = params.epsilon.max(1e-12);
    k.map_inplace(|v| (-(v - cmin) / eps).exp().max(KERNEL_FLOOR));
    check_kernel_support(&k, mu, nu, "sinkhorn")?;

    let (u, v, convergence) = scaling_loop(&k, mu, nu, params, "sinkhorn")?;
    // T = diag(u) K diag(v)
    let mut t = k;
    scale_plan(&mut t, &u, &v);
    if !t.all_finite() {
        return Err(LinalgError::NotFinite { routine: "sinkhorn" });
    }
    Ok((t, convergence))
}

/// One proximal-point step for Gromov–Wasserstein style objectives
/// (Xie et al. 2020, used by GWL/S-GWL): solves
/// `min_T ⟨C, T⟩ + ε KL(T ‖ T_prev)` by running Sinkhorn on the kernel
/// `T_prev ⊙ exp(−C/ε)`.
///
/// # Errors
/// Propagates Sinkhorn failures, including the degenerate-kernel check of
/// [`sinkhorn`].
///
/// # Panics
/// Panics on dimension mismatch.
pub fn proximal_step(
    c: &DenseMatrix,
    t_prev: &DenseMatrix,
    mu: &[f64],
    nu: &[f64],
    params: &SinkhornParams,
) -> Result<(DenseMatrix, Convergence), LinalgError> {
    assert_eq!(c.shape(), t_prev.shape(), "proximal_step: shape mismatch");
    let (m, n) = c.shape();
    let eps = params.epsilon.max(1e-12);
    let cmin = c.as_slice().iter().copied().fold(f64::INFINITY, f64::min);
    // Kernel = T_prev ⊙ exp(−(C−min)/ε); then plain Sinkhorn scalings.
    let k = DenseMatrix::par_from_fn(m, n, |i, j| {
        let kern = (-(c.get(i, j) - cmin) / eps).exp().max(KERNEL_FLOOR);
        (t_prev.get(i, j).max(KERNEL_FLOOR)) * kern
    });
    check_kernel_support(&k, mu, nu, "proximal_step")?;
    let (u, v, convergence) = scaling_loop(&k, mu, nu, params, "proximal_step")?;
    let mut t = k;
    scale_plan(&mut t, &u, &v);
    Ok((t, convergence))
}

/// Uniform probability vector of length `n`.
pub fn uniform_marginal(n: usize) -> Vec<f64> {
    vec![1.0 / n as f64; n]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_marginals(t: &DenseMatrix, mu: &[f64], nu: &[f64], tol: f64) {
        let (m, n) = t.shape();
        for i in 0..m {
            let row_sum: f64 = t.row(i).iter().sum();
            assert!((row_sum - mu[i]).abs() < tol, "row {i}: {row_sum} vs {}", mu[i]);
        }
        for j in 0..n {
            let col_sum: f64 = (0..m).map(|i| t.get(i, j)).sum();
            assert!((col_sum - nu[j]).abs() < tol, "col {j}: {col_sum} vs {}", nu[j]);
        }
    }

    #[test]
    fn transport_plan_has_requested_marginals() {
        let c = DenseMatrix::from_rows(&[&[0.0, 1.0, 2.0], &[1.0, 0.0, 1.0], &[2.0, 1.0, 0.0]]);
        let mu = uniform_marginal(3);
        let nu = uniform_marginal(3);
        let (t, conv) = sinkhorn(&c, &mu, &nu, &SinkhornParams::default()).unwrap();
        check_marginals(&t, &mu, &nu, 1e-5);
        assert!(conv.converged);
        assert_eq!(conv.stop, telemetry::StopReason::Tolerance);
        assert!(conv.iterations > 0 && conv.residual < SinkhornParams::default().tol);
    }

    #[test]
    fn truncated_scaling_reports_max_iter_stop() {
        let c = DenseMatrix::from_rows(&[&[0.0, 1.0, 2.0], &[1.0, 0.0, 1.0], &[2.0, 1.0, 0.0]]);
        let mu = uniform_marginal(3);
        let nu = uniform_marginal(3);
        let params = SinkhornParams { epsilon: 0.01, max_iter: 2, tol: 0.0 };
        let _g = telemetry::install(true);
        let (_, conv) = sinkhorn(&c, &mu, &nu, &params).unwrap();
        assert!(!conv.converged, "an unreachable tolerance forces truncation");
        assert_eq!(conv.stop, telemetry::StopReason::MaxIter);
        assert_eq!(conv.iterations, 2);
        assert!(conv.residual.is_finite());
        let t = telemetry::drain();
        assert_eq!(t.sinkhorn_sweeps, 2);
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.series.len(), 1);
        assert_eq!(t.series[0].residuals.len(), 2);
    }

    #[test]
    fn scaling_loop_is_allocation_free_after_first_sweep() {
        // Acceptance check for the workspace conversion: the two per-sweep
        // temporaries (`K v`, `Kᵀ u`) are allocated on the first sweep only
        // and reused on every later one, so a 5-sweep run saves exactly
        // 2 × 4 allocations of 3 f64 each.
        let c = DenseMatrix::from_rows(&[&[0.0, 1.0, 2.0], &[1.0, 0.0, 1.0], &[2.0, 1.0, 0.0]]);
        let mu = uniform_marginal(3);
        let nu = uniform_marginal(3);
        let params = SinkhornParams { epsilon: 0.01, max_iter: 5, tol: 0.0 };
        let _g = telemetry::install(false);
        let _ = sinkhorn(&c, &mu, &nu, &params).unwrap();
        let t = telemetry::drain();
        assert_eq!(t.sinkhorn_sweeps, 5);
        assert_eq!(t.allocs_saved, 2 * 4, "zero heap allocations per sweep after warm-up");
        assert_eq!(t.alloc_bytes_saved, 2 * 4 * 3 * 8);
    }

    #[test]
    fn low_epsilon_concentrates_on_identity_for_identity_cost() {
        // Cost 0 on the diagonal, 1 elsewhere: OT plan should approach the
        // scaled identity as ε → 0.
        let n = 4;
        let c = DenseMatrix::from_fn(n, n, |i, j| if i == j { 0.0 } else { 1.0 });
        let mu = uniform_marginal(n);
        let nu = uniform_marginal(n);
        let params = SinkhornParams { epsilon: 0.02, max_iter: 2000, tol: 1e-10 };
        let (t, _) = sinkhorn(&c, &mu, &nu, &params).unwrap();
        for i in 0..n {
            assert!(t.get(i, i) > 0.2, "diagonal mass too small: {}", t.get(i, i));
            for j in 0..n {
                if i != j {
                    assert!(t.get(i, j) < 0.01);
                }
            }
        }
    }

    #[test]
    fn non_uniform_marginals_respected() {
        let c = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let mu = vec![0.7, 0.3];
        let nu = vec![0.4, 0.6];
        let (t, _) = sinkhorn(&c, &mu, &nu, &SinkhornParams::default()).unwrap();
        check_marginals(&t, &mu, &nu, 1e-5);
    }

    #[test]
    fn rectangular_problem() {
        let c = DenseMatrix::from_rows(&[&[0.0, 2.0, 4.0], &[4.0, 2.0, 0.0]]);
        let mu = uniform_marginal(2);
        let nu = uniform_marginal(3);
        let (t, _) = sinkhorn(&c, &mu, &nu, &SinkhornParams::default()).unwrap();
        check_marginals(&t, &mu, &nu, 1e-5);
        // Mass should avoid the expensive corners.
        assert!(t.get(0, 0) > t.get(0, 2));
        assert!(t.get(1, 2) > t.get(1, 0));
    }

    #[test]
    fn proximal_step_keeps_marginals_and_reduces_cost() {
        let c = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let mu = uniform_marginal(2);
        let nu = uniform_marginal(2);
        // Start from the independent coupling.
        let t0 = DenseMatrix::filled(2, 2, 0.25);
        let params = SinkhornParams { epsilon: 0.05, max_iter: 500, tol: 1e-9 };
        let (t1, _) = proximal_step(&c, &t0, &mu, &nu, &params).unwrap();
        check_marginals(&t1, &mu, &nu, 1e-5);
        let cost0: f64 =
            (0..2).map(|i| (0..2).map(|j| c.get(i, j) * t0.get(i, j)).sum::<f64>()).sum();
        let cost1: f64 =
            (0..2).map(|i| (0..2).map(|j| c.get(i, j) * t1.get(i, j)).sum::<f64>()).sum();
        assert!(cost1 < cost0, "proximal step should decrease transport cost");
    }

    #[test]
    fn degenerate_kernel_row_is_an_error_not_a_silent_stall() {
        // Regression: row 0 has astronomically high cost everywhere, so at
        // small ε its entire Gibbs-kernel row underflows to the clamp floor
        // and its marginal can never be met. The solver used to zero `u[0]`
        // silently, stall for max_iter, and return Ok with a plan violating
        // the requested marginals; it must report the degeneracy instead.
        let c = DenseMatrix::from_rows(&[&[1e9, 1e9, 1e9], &[1.0, 0.0, 1.0], &[2.0, 1.0, 0.0]]);
        let mu = uniform_marginal(3);
        let nu = uniform_marginal(3);
        let params = SinkhornParams { epsilon: 1e-3, max_iter: 100, tol: 1e-8 };
        let err = sinkhorn(&c, &mu, &nu, &params).unwrap_err();
        assert!(
            matches!(err, LinalgError::Singular { routine: "sinkhorn" }),
            "expected Singular, got {err:?}"
        );
        // The proximal wrapper shares the check.
        let t0 = DenseMatrix::filled(3, 3, 1.0 / 9.0);
        let err = proximal_step(&c, &t0, &mu, &nu, &params).unwrap_err();
        assert!(matches!(err, LinalgError::Singular { routine: "proximal_step" }));
    }

    #[test]
    fn degenerate_row_with_zero_marginal_is_allowed() {
        // A dead kernel row is harmless when it carries no mass: the plan
        // simply leaves that row empty.
        let c = DenseMatrix::from_rows(&[&[1e9, 1e9], &[0.0, 0.01]]);
        let mu = vec![0.0, 1.0];
        let nu = vec![0.5, 0.5];
        let params = SinkhornParams { epsilon: 0.1, max_iter: 500, tol: 1e-9 };
        let (t, _) = sinkhorn(&c, &mu, &nu, &params).unwrap();
        assert!(t.row(0).iter().all(|&x| x < 1e-12));
        check_marginals(&t, &mu, &nu, 1e-5);
    }

    #[test]
    fn expired_budget_interrupts_both_solvers() {
        let c = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let mu = uniform_marginal(2);
        let nu = uniform_marginal(2);
        let _g = graphalign_par::budget::install(Some(std::time::Duration::ZERO));
        let err = sinkhorn(&c, &mu, &nu, &SinkhornParams::default()).unwrap_err();
        assert!(
            matches!(err, crate::LinalgError::Interrupted { routine: "sinkhorn", iterations: 0 }),
            "got {err:?}"
        );
        let t0 = DenseMatrix::filled(2, 2, 0.25);
        let err = proximal_step(&c, &t0, &mu, &nu, &SinkhornParams::default()).unwrap_err();
        assert!(err.is_interrupted(), "got {err:?}");
    }

    #[test]
    fn cost_shift_invariance() {
        // Adding a constant to C must not change the plan.
        let c1 = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let mut c2 = c1.clone();
        c2.map_inplace(|v| v + 100.0);
        let mu = uniform_marginal(2);
        let nu = uniform_marginal(2);
        let p = SinkhornParams::default();
        let (t1, _) = sinkhorn(&c1, &mu, &nu, &p).unwrap();
        let (t2, _) = sinkhorn(&c2, &mu, &nu, &p).unwrap();
        assert!(t1.sub(&t2).max_abs() < 1e-9);
    }
}
