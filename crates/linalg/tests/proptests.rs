//! Property-based tests of the numerical invariants the solvers guarantee.

use graphalign_linalg::eigen::symmetric_eigen;
use graphalign_linalg::lanczos::{lanczos, Which};
use graphalign_linalg::power::power_iteration;
use graphalign_linalg::qr::thin_qr;
use graphalign_linalg::sinkhorn::{sinkhorn, uniform_marginal, SinkhornParams};
use graphalign_linalg::svd::{pinv, thin_svd};
use graphalign_linalg::{CsrMatrix, DenseMatrix, Workspace};
use proptest::prelude::*;

/// Random dense matrix with entries in [-1, 1].
fn dense(rows: usize, cols: usize) -> impl Strategy<Value = DenseMatrix> {
    proptest::collection::vec(-1.0f64..1.0, rows * cols)
        .prop_map(move |data| DenseMatrix::from_vec(rows, cols, data))
}

/// Random symmetric matrix of size n.
fn symmetric(n: usize) -> impl Strategy<Value = DenseMatrix> {
    dense(n, n).prop_map(|m| m.add(&m.transpose()).scaled(0.5))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Eigendecomposition reconstructs the input and yields an orthonormal
    /// basis with ascending eigenvalues.
    #[test]
    fn eigen_reconstructs(m in symmetric(10)) {
        let e = symmetric_eigen(&m).unwrap();
        // Ascending order.
        for w in e.values.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
        // Orthonormal.
        let gram = e.vectors.tr_matmul(&e.vectors);
        prop_assert!(gram.sub(&DenseMatrix::identity(10)).max_abs() < 1e-9);
        // Reconstruction.
        let lambda = DenseMatrix::from_fn(10, 10, |i, j| if i == j { e.values[i] } else { 0.0 });
        let rec = e.vectors.matmul(&lambda).matmul_tr(&e.vectors);
        prop_assert!(rec.sub(&m).max_abs() < 1e-8);
    }

    /// Trace and eigenvalue-sum agree (a classical invariant).
    #[test]
    fn eigen_trace_identity(m in symmetric(8)) {
        let e = symmetric_eigen(&m).unwrap();
        let trace: f64 = (0..8).map(|i| m.get(i, i)).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-9);
    }

    /// QR: Q orthonormal, R upper-triangular, QR = A.
    #[test]
    fn qr_invariants(a in dense(9, 5)) {
        let f = thin_qr(&a);
        prop_assert!(f.q.tr_matmul(&f.q).sub(&DenseMatrix::identity(5)).max_abs() < 1e-9);
        for i in 0..f.r.rows() {
            for j in 0..i {
                prop_assert!(f.r.get(i, j).abs() < 1e-10);
            }
        }
        prop_assert!(f.q.matmul(&f.r).sub(&a).max_abs() < 1e-10);
    }

    /// SVD reconstructs, with descending nonnegative singular values.
    #[test]
    fn svd_invariants(a in dense(7, 4)) {
        let s = thin_svd(&a).unwrap();
        for w in s.sigma.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        prop_assert!(s.sigma.iter().all(|&x| x >= 0.0));
        prop_assert!(s.reconstruct().sub(&a).max_abs() < 1e-7);
    }

    /// Pseudo-inverse satisfies the Moore–Penrose identities.
    #[test]
    fn pinv_identities(a in dense(6, 4)) {
        let p = pinv(&a, 1e-6).unwrap();
        let apa = a.matmul(&p).matmul(&a);
        prop_assert!(apa.sub(&a).max_abs() < 1e-6);
        let pap = p.matmul(&a).matmul(&p);
        prop_assert!(pap.sub(&p).max_abs() < 1e-6);
    }

    /// Sinkhorn plans satisfy both marginals and are non-negative.
    #[test]
    fn sinkhorn_marginals(c in dense(5, 7)) {
        // Shift costs to [0, 2] so ε = 0.1 is adequate.
        let mut cost = c;
        cost.map_inplace(|v| v + 1.0);
        let mu = uniform_marginal(5);
        let nu = uniform_marginal(7);
        let (t, _) = sinkhorn(&cost, &mu, &nu, &SinkhornParams::default()).unwrap();
        for i in 0..5 {
            let row: f64 = t.row(i).iter().sum();
            prop_assert!((row - 0.2).abs() < 1e-4);
            prop_assert!(t.row(i).iter().all(|&v| v >= 0.0));
        }
        for j in 0..7 {
            let col: f64 = (0..5).map(|i| t.get(i, j)).sum();
            prop_assert!((col - 1.0 / 7.0).abs() < 1e-4);
        }
    }

    /// Power iteration converges to the dominant eigenpair found by the
    /// exact solver (in absolute value).
    #[test]
    fn power_iteration_matches_eigen(m in symmetric(6)) {
        let e = symmetric_eigen(&m).unwrap();
        let dominant = e
            .values
            .iter()
            .fold(0.0f64, |acc, &v| if v.abs() > acc.abs() { v } else { acc });
        // Skip near-degenerate dominant pairs, where convergence stalls.
        let sorted: Vec<f64> = {
            let mut s: Vec<f64> = e.values.iter().map(|v| v.abs()).collect();
            s.sort_by(|a, b| b.partial_cmp(a).unwrap());
            s
        };
        prop_assume!(sorted[0] > 1e-3 && sorted[0] - sorted[1] > 1e-2);
        let r = power_iteration(&m, &[1.0, 0.5, 0.25, -0.3, 0.7, -0.1], 5000, 1e-13).unwrap();
        prop_assert!(
            (r.value.abs() - dominant.abs()).abs() < 1e-6,
            "power {} vs eigen {dominant}", r.value
        );
    }

    /// Lanczos on a CSR matrix agrees with the dense solver at both ends of
    /// the spectrum.
    #[test]
    fn lanczos_matches_dense(m in symmetric(12), seed in any::<u64>()) {
        let sparse = CsrMatrix::from_dense(&m);
        let e = symmetric_eigen(&m).unwrap();
        let top = lanczos(&sparse, 2, Which::Largest, 12, seed).unwrap();
        prop_assert!((top.values[0] - e.values[11]).abs() < 1e-7);
        let bottom = lanczos(&sparse, 2, Which::Smallest, 12, seed).unwrap();
        prop_assert!((bottom.values[0] - e.values[0]).abs() < 1e-7);
    }

    /// CSR round-trips through dense and transposition.
    #[test]
    fn csr_round_trips(a in dense(6, 9)) {
        // Sparsify: zero small entries so the CSR has structure.
        let mut m = a;
        m.map_inplace(|v| if v.abs() < 0.5 { 0.0 } else { v });
        let csr = CsrMatrix::from_dense(&m);
        prop_assert_eq!(csr.to_dense(), m.clone());
        prop_assert_eq!(csr.transpose().transpose(), csr.clone());
        // SpMV consistency.
        let x: Vec<f64> = (0..9).map(|i| i as f64 * 0.1).collect();
        let dense_y = m.mul_vec(&x);
        let sparse_y = csr.mul_vec(&x);
        for (d, s) in dense_y.iter().zip(&sparse_y) {
            prop_assert!((d - s).abs() < 1e-12);
        }
    }

    /// Matmul distributes over addition (ring axioms hold numerically).
    #[test]
    fn matmul_distributes(a in dense(4, 5), b in dense(5, 3), c in dense(5, 3)) {
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(left.sub(&right).max_abs() < 1e-12);
    }
}

/// Reference GEMM: the naive ikj product every blocked/fused kernel promises
/// to reproduce bit-for-bit — each output element accumulates its shared-dim
/// terms with a single accumulator in ascending order.
fn matmul_reference(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let (m, k) = a.shape();
    let n = b.cols();
    DenseMatrix::from_fn(m, n, |i, j| {
        let mut acc = 0.0;
        for l in 0..k {
            acc += a.get(i, l) * b.get(l, j);
        }
        acc
    })
}

/// Index of the first bitwise mismatch, or `None` when the matrices agree
/// exactly (shape mismatch reports position `usize::MAX`).
fn first_bit_mismatch(x: &DenseMatrix, y: &DenseMatrix) -> Option<usize> {
    if x.shape() != y.shape() {
        return Some(usize::MAX);
    }
    x.as_slice().iter().zip(y.as_slice()).position(|(a, b)| a.to_bits() != b.to_bits())
}

/// Conformable operand set for the GEMM/SpMM kernels: shapes drawn from
/// `0..40` (covering empty, single-row, and blocked-path sizes), a sparsified
/// `m×k` CSR alongside dense `m×k`, `k×n`, `m×n`, and `n×k` factors.
#[allow(clippy::type_complexity)]
fn kernel_operands(
) -> impl Strategy<Value = (DenseMatrix, DenseMatrix, DenseMatrix, DenseMatrix, CsrMatrix)> {
    (0usize..40, 0usize..40, 0usize..40).prop_flat_map(|(m, k, n)| {
        (dense(m, k), dense(k, n), dense(m, n), dense(n, k)).prop_map(|(a, b, x, y)| {
            let mut sp = a.clone();
            sp.map_inplace(|v| if v.abs() < 0.5 { 0.0 } else { v });
            let s = CsrMatrix::from_dense(&sp);
            (a, b, x, y, s)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The blocked GEMM and its transposed variants reproduce the naive
    /// ascending-order ikj loop bit-for-bit at arbitrary shapes.
    #[test]
    fn blocked_gemm_family_is_bitwise_exact((a, b, ..) in kernel_operands()) {
        let want = matmul_reference(&a, &b);
        prop_assert_eq!(first_bit_mismatch(&a.matmul(&b), &want), None);
        prop_assert_eq!(first_bit_mismatch(&a.transpose().tr_matmul(&b), &want), None);
        prop_assert_eq!(first_bit_mismatch(&a.matmul_tr(&b.transpose()), &want), None);
    }

    /// The `_into` forms with a reused workspace and output buffers are
    /// bit-identical to their allocating counterparts, including when the
    /// workspace is warm from a differently-shaped earlier product.
    #[test]
    fn into_variants_are_bitwise_exact(
        (a, b, ..) in kernel_operands(),
        (c, d, ..) in kernel_operands(),
    ) {
        let mut ws = Workspace::new();
        let mut out = DenseMatrix::zeros(a.rows(), b.cols());
        a.matmul_into(&b, &mut out, &mut ws);
        prop_assert_eq!(first_bit_mismatch(&out, &a.matmul(&b)), None);
        let mut out2 = DenseMatrix::zeros(c.rows(), d.cols());
        c.matmul_into(&d, &mut out2, &mut ws);
        prop_assert_eq!(first_bit_mismatch(&out2, &c.matmul(&d)), None);
        let ct = c.transpose();
        let mut out3 = DenseMatrix::zeros(ct.cols(), d.cols());
        ct.tr_matmul_into(&d, &mut out3, &mut ws);
        prop_assert_eq!(first_bit_mismatch(&out3, &ct.tr_matmul(&d)), None);
        let mut out4 = DenseMatrix::zeros(a.rows(), b.transpose().rows());
        a.matmul_tr_into(&b.transpose(), &mut out4, &mut ws);
        prop_assert_eq!(first_bit_mismatch(&out4, &a.matmul_tr(&b.transpose())), None);
    }

    /// The fused CSR kernels match their materialized-transpose
    /// formulations bit-for-bit.
    #[test]
    fn fused_csr_kernels_are_bitwise_exact((_, b, x, y, s) in kernel_operands()) {
        let mut out = DenseMatrix::zeros(s.rows(), b.cols());
        s.mul_dense_into(&b, &mut out);
        prop_assert_eq!(first_bit_mismatch(&out, &s.mul_dense(&b)), None);
        prop_assert_eq!(
            first_bit_mismatch(&s.tr_mul_dense(&x), &s.transpose().mul_dense(&x)),
            None
        );
        prop_assert_eq!(
            first_bit_mismatch(&s.mul_dense_tr(&y), &s.mul_dense(&y.transpose())),
            None
        );
        let fused = y.mul_csr_tr(&s);
        let via_transposes = s.mul_dense(&y.transpose()).transpose();
        prop_assert_eq!(first_bit_mismatch(&fused, &via_transposes), None);
        let mut into = DenseMatrix::zeros(y.rows(), s.rows());
        y.mul_csr_tr_into(&s, &mut into);
        prop_assert_eq!(first_bit_mismatch(&into, &fused), None);
    }
}

/// The degenerate shapes the random ranges only occasionally reach, pinned:
/// fully empty, empty shared dimension, single row/column, and a size just
/// past the blocked-path threshold.
#[test]
fn blocked_kernels_pinned_edge_shapes() {
    for (m, k, n) in
        [(0, 0, 0), (0, 5, 3), (4, 0, 3), (2, 3, 0), (1, 1, 1), (1, 9, 4), (33, 34, 35)]
    {
        let a = DenseMatrix::from_fn(m, k, |i, j| ((i * 13 + j * 7) as f64).sin());
        let b = DenseMatrix::from_fn(k, n, |i, j| ((i * 5 + j * 11) as f64).cos());
        let want = matmul_reference(&a, &b);
        assert_eq!(first_bit_mismatch(&a.matmul(&b), &want), None, "matmul {m}x{k}x{n}");
        let mut ws = Workspace::new();
        let mut out = DenseMatrix::zeros(m, n);
        a.matmul_into(&b, &mut out, &mut ws);
        assert_eq!(first_bit_mismatch(&out, &want), None, "matmul_into {m}x{k}x{n}");
        let s = CsrMatrix::from_dense(&a);
        let fused = b.transpose().mul_csr_tr(&s);
        assert_eq!(first_bit_mismatch(&fused, &want.transpose()), None, "mul_csr_tr {m}x{k}x{n}");
    }
}

/// Paired random slices of equal, arbitrary length spanning every `n mod 8`
/// (and hence `n mod 4`) remainder class, including empty and length 1.
fn paired_slices() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (0usize..68).prop_flat_map(|n| {
        (proptest::collection::vec(-2.0f64..2.0, n), proptest::collection::vec(-2.0f64..2.0, n))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The runtime-dispatched vector kernels (AVX2 on hosts that have it)
    /// are bitwise-equal to their scalar lane-group twins at every
    /// remainder width — the dispatch decision can never change a bit.
    #[test]
    fn simd_vector_kernels_match_scalar_twins_bitwise((x, y) in paired_slices(), alpha in -2.0f64..2.0) {
        use graphalign_linalg::simd;
        prop_assert_eq!(simd::dot(&x, &y).to_bits(), simd::dot_scalar(&x, &y).to_bits());
        prop_assert_eq!(simd::sum(&x).to_bits(), simd::sum_scalar(&x).to_bits());
        prop_assert_eq!(
            simd::dist2_sq(&x, &y).to_bits(),
            simd::dist2_sq_scalar(&x, &y).to_bits()
        );
        let (m, p) = simd::dist2_sq_both(&x, &y);
        let (ms, ps) = simd::dist2_sq_both_scalar(&x, &y);
        prop_assert_eq!(m.to_bits(), ms.to_bits());
        prop_assert_eq!(p.to_bits(), ps.to_bits());
        let mut ya = y.clone();
        let mut yb = y.clone();
        simd::axpy(alpha, &x, &mut ya);
        simd::axpy_scalar(alpha, &x, &mut yb);
        prop_assert_eq!(
            ya.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            yb.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        let mut xa = x.clone();
        let mut xb = x;
        simd::scale(alpha, &mut xa);
        simd::scale_scalar(alpha, &mut xb);
        prop_assert_eq!(
            xa.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            xb.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    /// The GEMM microkernels (row-major and packed-panel, 1-row and 4-row)
    /// are bitwise-equal to their scalar twins at every panel width
    /// remainder, empty shared dimension included.
    #[test]
    fn simd_gemm_tiles_match_scalar_twins_bitwise(
        kc in 0usize..12,
        nc in 1usize..28,
        seed in 0u64..1000,
    ) {
        use graphalign_linalg::simd;
        let gen = |k: u64, len: usize| -> Vec<f64> {
            (0..len)
                .map(|i| (((i as u64 * 2654435761 + seed * 97 + k) % 1000) as f64 - 500.0) / 251.0)
                .collect()
        };
        let panel = gen(1, kc * nc);
        let a: Vec<Vec<f64>> = (0..4).map(|r| gen(2 + r, kc)).collect();
        let init = gen(7, nc);

        let (mut o_simd, mut o_scal) = (init.clone(), init.clone());
        simd::gemm_tile1(&a[0], &panel, nc, &mut o_simd);
        simd::gemm_tile1_scalar(&a[0], &panel, nc, &mut o_scal);
        prop_assert_eq!(
            o_simd.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            o_scal.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );

        let bits4 = |rows: &[Vec<f64>]| -> Vec<u64> {
            rows.iter().flat_map(|r| r.iter().map(|v| v.to_bits())).collect()
        };
        let quad = [&a[0][..], &a[1][..], &a[2][..], &a[3][..]];
        let mut q_simd: Vec<Vec<f64>> = (0..4).map(|r| gen(11 + r, nc)).collect();
        let mut q_scal = q_simd.clone();
        {
            let [o0, o1, o2, o3] = &mut q_simd[..] else { unreachable!() };
            simd::gemm_tile4(quad, &panel, nc, o0, o1, o2, o3);
        }
        {
            let [o0, o1, o2, o3] = &mut q_scal[..] else { unreachable!() };
            simd::gemm_tile4_scalar(quad, &panel, nc, o0, o1, o2, o3);
        }
        prop_assert_eq!(bits4(&q_simd), bits4(&q_scal));

        // Packed-panel variants read the micro-strip layout produced by
        // pack_panel from a row-major source with leading dimension nc.
        let mut packed = vec![0.0; kc * nc];
        simd::pack_panel(&panel, nc, 0, 0, kc, nc, &mut packed);
        let (mut p_simd, mut p_scal) = (init.clone(), init);
        simd::gemm_tile1_packed(&a[0], &packed, nc, &mut p_simd);
        simd::gemm_tile1_packed_scalar(&a[0], &packed, nc, &mut p_scal);
        prop_assert_eq!(
            p_simd.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            p_scal.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        prop_assert_eq!(
            p_simd.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            o_simd.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "packed layout changed the numerics"
        );

        let mut pq_simd: Vec<Vec<f64>> = (0..4).map(|r| gen(11 + r, nc)).collect();
        let mut pq_scal = pq_simd.clone();
        {
            let [o0, o1, o2, o3] = &mut pq_simd[..] else { unreachable!() };
            simd::gemm_tile4_packed(quad, &packed, nc, o0, o1, o2, o3);
        }
        {
            let [o0, o1, o2, o3] = &mut pq_scal[..] else { unreachable!() };
            simd::gemm_tile4_packed_scalar(quad, &packed, nc, o0, o1, o2, o3);
        }
        prop_assert_eq!(bits4(&pq_simd), bits4(&pq_scal));
        prop_assert_eq!(
            bits4(&pq_simd),
            bits4(&q_simd),
            "packed layout changed the 4-row tile numerics"
        );
    }

    /// The form-selecting right-SpMM is bitwise-identical to the plain
    /// gather kernel on both sides of its size cutoff.
    #[test]
    fn mul_csr_tr_auto_is_bitwise_exact((_, _, _, y, s) in kernel_operands()) {
        let mut ws = Workspace::new();
        let mut out = DenseMatrix::zeros(y.rows(), s.rows());
        y.mul_csr_tr_into_auto(&s, &mut out, &mut ws);
        prop_assert_eq!(first_bit_mismatch(&out, &y.mul_csr_tr(&s)), None);
    }
}

/// The remainder widths the dispatch paths split on, pinned: every
/// `n mod 8` class around one and two full lane groups, the empty slice,
/// and length 1.
#[test]
fn simd_kernels_pinned_remainder_widths() {
    use graphalign_linalg::simd;
    for n in [0usize, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 31, 33] {
        let x: Vec<f64> = (0..n).map(|i| ((i * 13 + 5) as f64).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) as f64).cos()).collect();
        assert_eq!(simd::dot(&x, &y).to_bits(), simd::dot_scalar(&x, &y).to_bits(), "dot n={n}");
        assert_eq!(simd::sum(&x).to_bits(), simd::sum_scalar(&x).to_bits(), "sum n={n}");
        assert_eq!(
            simd::dist2_sq(&x, &y).to_bits(),
            simd::dist2_sq_scalar(&x, &y).to_bits(),
            "dist2_sq n={n}"
        );
        let mut ya = y.clone();
        let mut yb = y.clone();
        simd::axpy(0.37, &x, &mut ya);
        simd::axpy_scalar(0.37, &x, &mut yb);
        assert!(ya.iter().zip(&yb).all(|(a, b)| a.to_bits() == b.to_bits()), "axpy n={n}");
        // 1×n GEMM tile: a single unit-length lhs row against an n-wide panel.
        if n > 0 {
            let a = [0.83_f64];
            let mut o1 = vec![0.25; n];
            let mut o2 = o1.clone();
            simd::gemm_tile1(&a, &x, n, &mut o1);
            simd::gemm_tile1_scalar(&a, &x, n, &mut o2);
            assert!(o1.iter().zip(&o2).all(|(a, b)| a.to_bits() == b.to_bits()), "tile1 1x{n}");
        }
    }
}
