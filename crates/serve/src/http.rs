//! Minimal HTTP/1.1 support over `std::net` — just enough for the serving
//! protocol: request-line + header parsing with a `Content-Length` body on
//! the way in, `Connection: close` responses on the way out, and a blocking
//! client helper for tests and the `serve_bench` binary.
//!
//! The build environment is offline, so no HTTP crate is available; this
//! deliberately supports only what the protocol uses (no chunked encoding,
//! no keep-alive, no query strings).
//!
//! Reads happen under the socket deadline the connection handler sets, so a
//! client that opens a connection and trickles bytes (slow loris) gets a
//! `408` and its thread back instead of parking a handler forever; a body
//! larger than the configured cap is refused with `413` before it is read.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Default upper bound on accepted request bodies (64 MiB): an uploaded
/// edge list for the largest study graphs fits comfortably, while a stray
/// client cannot make the server buffer arbitrary amounts. Overridable via
/// `ServeConfig::max_body_bytes`.
pub const MAX_BODY_BYTES: usize = 64 << 20;

/// Why a request could not be read. Maps onto the response status so the
/// connection handler answers with the right code instead of a blanket 400.
#[derive(Debug)]
pub enum RequestError {
    /// Syntactically broken request (bad request line, bad Content-Length).
    Malformed(String),
    /// The socket deadline expired before a full request arrived.
    TimedOut,
    /// The declared body exceeds the server's byte cap.
    TooLarge(String),
}

impl RequestError {
    /// The HTTP status this error answers with (`400`, `408`, or `413`).
    pub fn status(&self) -> u16 {
        match self {
            RequestError::Malformed(_) => 400,
            RequestError::TimedOut => 408,
            RequestError::TooLarge(_) => 413,
        }
    }

    /// Human-readable message for the error body.
    pub fn message(&self) -> String {
        match self {
            RequestError::Malformed(m) | RequestError::TooLarge(m) => m.clone(),
            RequestError::TimedOut => {
                "request read deadline expired before a full request arrived".to_string()
            }
        }
    }
}

fn io_error(context: &str, e: &std::io::Error) -> RequestError {
    match e.kind() {
        // Both kinds occur for an expired SO_RCVTIMEO depending on platform.
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => RequestError::TimedOut,
        _ => RequestError::Malformed(format!("{context}: {e}")),
    }
}

/// A parsed request: method, path, and raw body bytes.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercased by the client, matched exactly).
    pub method: String,
    /// Absolute path, e.g. `/jobs/3/cancel`.
    pub path: String,
    /// Raw body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The body as UTF-8, or an error message for invalid encodings.
    pub fn body_utf8(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|_| "request body is not valid UTF-8".to_string())
    }
}

/// Reads one request from `stream`, refusing bodies above `max_body` bytes.
/// Assumes the caller has already armed the socket read deadline; an
/// expired deadline surfaces as [`RequestError::TimedOut`] (a `408`).
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, RequestError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| io_error("read request line", &e))?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("empty request line".to_string()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("request line has no path".to_string()))?
        .to_string();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        let n = reader.read_line(&mut header).map_err(|e| io_error("read header", &e))?;
        let header = header.trim_end();
        if n == 0 || header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    RequestError::Malformed(format!("bad Content-Length {:?}", value.trim()))
                })?;
            }
        }
    }
    if content_length > max_body {
        return Err(RequestError::TooLarge(format!(
            "body of {content_length} bytes exceeds the {max_body} byte limit"
        )));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| io_error("read body", &e))?;
    Ok(Request { method, path, body })
}

/// Writes a `Connection: close` response with the given status, extra
/// headers (e.g. `Retry-After` on a 429), and body.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("Connection: close\r\n\r\n");
    // The peer may already have hung up; nothing useful to do about it.
    let _ = stream.write_all(head.as_bytes()).and_then(|()| stream.write_all(body));
    let _ = stream.flush();
}

/// A response as seen by the blocking client helper.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl Response {
    /// Parses the body as JSON; panics with context on failure (the helper
    /// is test/bench-side, where a malformed body is a hard bug).
    pub fn json(&self) -> graphalign_json::Json {
        graphalign_json::from_str(&self.body)
            .unwrap_or_else(|e| panic!("malformed response body {:?}: {e:?}", self.body))
    }

    /// The first header with the given name (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }
}

/// Blocking one-shot HTTP exchange against `addr` (e.g. `"127.0.0.1:7464"`).
pub fn request(addr: &str, method: &str, path: &str, body: &[u8]) -> Result<Response, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).map_err(|e| format!("send request: {e}"))?;
    stream.write_all(body).map_err(|e| format!("send body: {e}"))?;
    stream.flush().map_err(|e| format!("flush: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).map_err(|e| format!("read status line: {e}"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    loop {
        let mut header = String::new();
        let n = reader.read_line(&mut header).map_err(|e| format!("read header: {e}"))?;
        let header = header.trim_end();
        if n == 0 || header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let name = name.to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().ok();
            }
            headers.push((name, value));
        }
    }
    let mut body = Vec::new();
    match content_length {
        Some(len) => {
            body.resize(len, 0);
            reader.read_exact(&mut body).map_err(|e| format!("read body: {e}"))?;
        }
        None => {
            reader.read_to_end(&mut body).map_err(|e| format!("read body: {e}"))?;
        }
    }
    let body =
        String::from_utf8(body).map_err(|_| "response body is not valid UTF-8".to_string())?;
    Ok(Response { status, headers, body })
}
