//! Minimal HTTP/1.1 support over `std::net` — just enough for the serving
//! protocol: request-line + header parsing with a `Content-Length` body on
//! the way in, `Connection: close` responses on the way out, and a blocking
//! client helper for tests and the `serve_bench` binary.
//!
//! The build environment is offline, so no HTTP crate is available; this
//! deliberately supports only what the protocol uses (no chunked encoding,
//! no keep-alive, no query strings).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on accepted request bodies (64 MiB): an uploaded edge list
/// for the largest study graphs fits comfortably, while a stray client
/// cannot make the server buffer arbitrary amounts.
pub const MAX_BODY_BYTES: usize = 64 << 20;

/// A parsed request: method, path, and raw body bytes.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercased by the client, matched exactly).
    pub method: String,
    /// Absolute path, e.g. `/jobs/3/cancel`.
    pub path: String,
    /// Raw body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The body as UTF-8, or an error message for invalid encodings.
    pub fn body_utf8(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|_| "request body is not valid UTF-8".to_string())
    }
}

/// Reads one request from `stream`. Returns `Err` with a human-readable
/// message on malformed input (the caller answers with a 400).
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| format!("read request line: {e}"))?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_string();
    let path = parts.next().ok_or("request line has no path")?.to_string();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        let n = reader.read_line(&mut header).map_err(|e| format!("read header: {e}"))?;
        let header = header.trim_end();
        if n == 0 || header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad Content-Length {:?}", value.trim()))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(format!("body of {content_length} bytes exceeds the {MAX_BODY_BYTES} limit"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| format!("read body: {e}"))?;
    Ok(Request { method, path, body })
}

/// Writes a `Connection: close` response with the given status and body.
pub fn write_response(stream: &mut TcpStream, status: u16, content_type: &str, body: &[u8]) {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    // The peer may already have hung up; nothing useful to do about it.
    let _ = stream.write_all(head.as_bytes()).and_then(|()| stream.write_all(body));
    let _ = stream.flush();
}

/// A response as seen by the blocking client helper.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: String,
}

impl Response {
    /// Parses the body as JSON; panics with context on failure (the helper
    /// is test/bench-side, where a malformed body is a hard bug).
    pub fn json(&self) -> graphalign_json::Json {
        graphalign_json::from_str(&self.body)
            .unwrap_or_else(|e| panic!("malformed response body {:?}: {e:?}", self.body))
    }
}

/// Blocking one-shot HTTP exchange against `addr` (e.g. `"127.0.0.1:7464"`).
pub fn request(addr: &str, method: &str, path: &str, body: &[u8]) -> Result<Response, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).map_err(|e| format!("send request: {e}"))?;
    stream.write_all(body).map_err(|e| format!("send body: {e}"))?;
    stream.flush().map_err(|e| format!("flush: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).map_err(|e| format!("read status line: {e}"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let mut content_length: Option<usize> = None;
    loop {
        let mut header = String::new();
        let n = reader.read_line(&mut header).map_err(|e| format!("read header: {e}"))?;
        let header = header.trim_end();
        if n == 0 || header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }
    let mut body = Vec::new();
    match content_length {
        Some(len) => {
            body.resize(len, 0);
            reader.read_exact(&mut body).map_err(|e| format!("read body: {e}"))?;
        }
        None => {
            reader.read_to_end(&mut body).map_err(|e| format!("read body: {e}"))?;
        }
    }
    let body =
        String::from_utf8(body).map_err(|_| "response body is not valid UTF-8".to_string())?;
    Ok(Response { status, body })
}
