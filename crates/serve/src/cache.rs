//! The keyed similarity/factor cache behind the serving layer.
//!
//! Entries are keyed by `(source digest, target digest, algorithm, params,
//! variant)` — everything the similarity phase depends on. The digests are
//! [`graphalign_graph::ContentDigest`] values, so two uploads of the same
//! graph (in any edge order, parsed at any thread count) share cache
//! entries, while a relabeled or perturbed graph never aliases one.
//!
//! The `variant` component accounts for method-dependent representations:
//! [`graphalign::Aligner::similarity_for`] returns a different (sparse)
//! representation only for the auction assignment, so the key space splits
//! into `"auction"` and `"generic"` rather than one slot per method — a
//! REGAL similarity computed for JV is reused verbatim for NN, SG, and
//! Hungarian queries.
//!
//! In memory the cache is an LRU bounded by total approximate bytes.
//! Optionally it persists entries to a directory as `similarity/v1` JSON
//! (see [`graphalign_linalg::serialize`]); evicted or cold entries are then
//! reloaded from disk, which still skips the expensive similarity phase.
//! JSON round-trips are bit-exact for finite values, so a disk hit yields
//! the same matching as the original computation; similarities containing
//! non-finite entries are kept in memory only.

use graphalign_graph::ContentDigest;
use graphalign_linalg::serialize::{similarity_from_json, similarity_to_json};
use graphalign_linalg::Similarity;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Everything the similarity phase depends on, as a cache key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Content digest of the source graph.
    pub source: ContentDigest,
    /// Content digest of the target graph.
    pub target: ContentDigest,
    /// Canonical algorithm name (registry spelling, e.g. `"REGAL"`).
    pub algorithm: String,
    /// Algorithm parameter fingerprint (`"default"` for registry aligners).
    pub params: String,
    /// Representation variant: `"auction"` or `"generic"` (see module docs).
    pub variant: &'static str,
}

impl CacheKey {
    /// The flat string form used for map lookups and disk filenames.
    pub fn as_string(&self) -> String {
        format!(
            "{}:{}:{}:{}:{}",
            self.source.to_hex(),
            self.target.to_hex(),
            self.algorithm,
            self.params,
            self.variant
        )
    }
}

struct Entry {
    sim: Arc<Similarity>,
    bytes: u64,
    last_used: u64,
}

struct Inner {
    entries: HashMap<String, Entry>,
    clock: u64,
    bytes: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    disk_loads: u64,
}

/// Counters for the `/stats` endpoint, a point-in-time snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries currently resident in memory.
    pub entries: usize,
    /// Approximate bytes of the resident entries.
    pub bytes: u64,
    /// Lookups served (from memory or disk).
    pub hits: u64,
    /// Lookups that fell through to the similarity phase.
    pub misses: u64,
    /// Entries dropped by the LRU byte cap.
    pub evictions: u64,
    /// Hits that were reloaded from the persistence directory.
    pub disk_loads: u64,
}

/// Byte-capped LRU cache of computed [`Similarity`] values with optional
/// disk persistence. All methods are thread-safe.
pub struct SimilarityCache {
    inner: Mutex<Inner>,
    capacity_bytes: u64,
    dir: Option<PathBuf>,
}

impl SimilarityCache {
    /// Creates a cache holding at most `capacity_bytes` of similarity data
    /// in memory, persisting entries under `dir` when given.
    pub fn new(capacity_bytes: u64, dir: Option<PathBuf>) -> std::io::Result<Self> {
        if let Some(d) = &dir {
            std::fs::create_dir_all(d)?;
        }
        Ok(Self {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                clock: 0,
                bytes: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
                disk_loads: 0,
            }),
            capacity_bytes,
            dir,
        })
    }

    /// FNV-1a 64-bit over the flat key string — stable across runs, so a
    /// restarted server finds the previous process's persisted entries.
    fn file_name(key: &CacheKey) -> String {
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x00000100000001b3;
        let mut h = OFFSET;
        for b in key.as_string().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
        format!("{h:016x}.sim.json")
    }

    /// Looks up `key`, consulting memory first, then the persistence
    /// directory. Returns the similarity and its approximate byte size.
    /// Counts a hit (including disk reloads) or a miss in the stats.
    pub fn get(&self, key: &CacheKey) -> Option<(Arc<Similarity>, u64)> {
        let flat = key.as_string();
        {
            let mut inner = self.inner.lock().expect("cache lock");
            inner.clock += 1;
            let clock = inner.clock;
            if let Some(e) = inner.entries.get_mut(&flat) {
                e.last_used = clock;
                let out = (Arc::clone(&e.sim), e.bytes);
                inner.hits += 1;
                return Some(out);
            }
        }
        // Cold in memory: try disk outside the lock (I/O under a mutex would
        // serialize all workers behind one file read).
        let dir = self.dir.as_ref()?;
        let path = dir.join(Self::file_name(key));
        let text = std::fs::read_to_string(&path).ok()?;
        let json = graphalign_json::from_str(&text).ok()?;
        let sim = match similarity_from_json(&json) {
            Ok(s) => Arc::new(s),
            Err(e) => {
                eprintln!("serve: ignoring corrupt cache file {}: {e}", path.display());
                return None;
            }
        };
        let bytes = sim.approx_bytes() as u64;
        let mut inner = self.inner.lock().expect("cache lock");
        inner.hits += 1;
        inner.disk_loads += 1;
        self.insert_locked(&mut inner, flat, Arc::clone(&sim), bytes);
        Some((sim, bytes))
    }

    /// Records that a lookup missed (the caller is about to compute).
    pub fn note_miss(&self) {
        self.inner.lock().expect("cache lock").misses += 1;
    }

    /// Inserts a freshly computed similarity, persisting it to disk when a
    /// directory is configured and the value serializes (finite entries).
    pub fn insert(&self, key: &CacheKey, sim: Arc<Similarity>) -> u64 {
        let bytes = sim.approx_bytes() as u64;
        if let Some(dir) = &self.dir {
            // Non-finite entries cannot round-trip through JSON and are kept
            // in memory only; `similarity_to_json` refuses them.
            if let Ok(json) = similarity_to_json(&sim) {
                let path = dir.join(Self::file_name(key));
                if let Err(e) = std::fs::write(&path, json.to_string_compact()) {
                    eprintln!("serve: cannot persist cache entry {}: {e}", path.display());
                }
            }
        }
        let mut inner = self.inner.lock().expect("cache lock");
        self.insert_locked(&mut inner, key.as_string(), sim, bytes);
        bytes
    }

    fn insert_locked(&self, inner: &mut Inner, flat: String, sim: Arc<Similarity>, bytes: u64) {
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(prev) = inner.entries.insert(flat, Entry { sim, bytes, last_used: clock }) {
            inner.bytes -= prev.bytes;
        }
        inner.bytes += bytes;
        // Evict least-recently-used entries down to the cap, but always keep
        // the newest entry even when it alone exceeds the budget.
        while inner.bytes > self.capacity_bytes && inner.entries.len() > 1 {
            let victim = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty cache");
            let e = inner.entries.remove(&victim).expect("victim present");
            inner.bytes -= e.bytes;
            inner.evictions += 1;
        }
    }

    /// Point-in-time counters for `/stats`.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock");
        CacheStats {
            entries: inner.entries.len(),
            bytes: inner.bytes,
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            disk_loads: inner.disk_loads,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalign_graph::Graph;
    use graphalign_linalg::DenseMatrix;

    fn key(tag: &str) -> CacheKey {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        CacheKey {
            source: g.content_digest(),
            target: g.content_digest(),
            algorithm: tag.to_string(),
            params: "default".to_string(),
            variant: "generic",
        }
    }

    fn sim(rows: usize) -> Arc<Similarity> {
        Arc::new(Similarity::Dense(DenseMatrix::from_vec(rows, 1, vec![1.0; rows])))
    }

    #[test]
    fn memory_hit_after_insert() {
        let c = SimilarityCache::new(1 << 20, None).unwrap();
        assert!(c.get(&key("A")).is_none());
        c.note_miss();
        c.insert(&key("A"), sim(4));
        let (got, bytes) = c.get(&key("A")).expect("hit");
        assert_eq!(got.rows(), 4);
        assert!(bytes > 0);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn lru_eviction_respects_byte_cap_and_recency() {
        // Each dense 4x1 entry is 32 payload bytes + struct overhead; a cap
        // of ~2.5 entries forces the least-recently-used one out.
        let one = sim(4).approx_bytes() as u64;
        let c = SimilarityCache::new(one * 5 / 2, None).unwrap();
        c.insert(&key("A"), sim(4));
        c.insert(&key("B"), sim(4));
        assert!(c.get(&key("A")).is_some(), "touch A so B becomes LRU");
        c.insert(&key("C"), sim(4));
        assert!(c.get(&key("B")).is_none(), "B was evicted");
        assert!(c.get(&key("A")).is_some());
        assert!(c.get(&key("C")).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn disk_round_trip_survives_eviction() {
        let dir = std::env::temp_dir().join(format!("graphalign-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let c = SimilarityCache::new(1 << 20, Some(dir.clone())).unwrap();
            c.insert(&key("A"), sim(4));
        }
        // A fresh cache (fresh process, conceptually) reloads from disk.
        let c = SimilarityCache::new(1 << 20, Some(dir.clone())).unwrap();
        let (got, _) = c.get(&key("A")).expect("disk hit");
        assert_eq!(got.rows(), 4);
        assert_eq!(c.stats().disk_loads, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn distinct_keys_do_not_alias() {
        let c = SimilarityCache::new(1 << 20, None).unwrap();
        c.insert(&key("A"), sim(4));
        assert!(c.get(&key("B")).is_none());
        let mut k = key("A");
        k.variant = "auction";
        assert!(c.get(&k).is_none(), "variant is part of the key");
    }
}
