//! The keyed similarity/factor cache behind the serving layer.
//!
//! Entries are keyed by `(source digest, target digest, algorithm, params,
//! variant)` — everything the similarity phase depends on. The digests are
//! [`graphalign_graph::ContentDigest`] values, so two uploads of the same
//! graph (in any edge order, parsed at any thread count) share cache
//! entries, while a relabeled or perturbed graph never aliases one.
//!
//! The `variant` component accounts for method-dependent representations:
//! [`graphalign::Aligner::similarity_for`] returns a different (sparse)
//! representation only for the auction assignment, so the key space splits
//! into `"auction"` and `"generic"` rather than one slot per method — a
//! REGAL similarity computed for JV is reused verbatim for NN, SG, and
//! Hungarian queries.
//!
//! In memory the cache is an LRU bounded by total approximate bytes.
//! Optionally it persists entries to a directory as checksummed
//! `similarity/v1` entries (see [`graphalign_linalg::serialize`]); evicted
//! or cold entries are then reloaded from disk, which still skips the
//! expensive similarity phase.
//!
//! # Crash safety
//!
//! Persistence is **write-temp-then-rename atomic**: a crash mid-write
//! leaves at worst a stray `.tmp` file, never a half-written entry under
//! the final name. Every entry carries an FNV-1a-64 content checksum plus
//! its exact payload length, so truncation and bit-level corruption are
//! both detected on read. A corrupt or truncated entry is **quarantined**
//! (moved into a `quarantine/` subdirectory, counted, reported degraded via
//! `/healthz`) and the lookup falls through to a recompute — corruption is
//! never fatal and never served. The constructor scans the directory up
//! front so a server restarted onto a damaged cache starts degraded instead
//! of discovering the damage one request at a time; re-persisting a fresh
//! entry under a quarantined name restores integrity (ready again).

use graphalign_graph::ContentDigest;
use graphalign_linalg::serialize::{fnv1a_64, from_checksummed_str, to_checksummed_string};
use graphalign_linalg::Similarity;
use graphalign_par::fault::{self, FaultKind};
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Fault-injection site id for persisted-entry reads (`io` kind simulates
/// a read IO error).
pub const FAULT_SITE_READ: &str = "serve:cache:read";
/// Fault-injection site id for entry persistence (`truncate` kind simulates
/// a torn, pre-atomic write).
pub const FAULT_SITE_PERSIST: &str = "serve:cache:persist";

/// Everything the similarity phase depends on, as a cache key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Content digest of the source graph.
    pub source: ContentDigest,
    /// Content digest of the target graph.
    pub target: ContentDigest,
    /// Canonical algorithm name (registry spelling, e.g. `"REGAL"`).
    pub algorithm: String,
    /// Algorithm parameter fingerprint (`"default"` for registry aligners).
    pub params: String,
    /// Representation variant: `"auction"` or `"generic"` (see module docs).
    pub variant: &'static str,
}

impl CacheKey {
    /// The flat string form used for map lookups and disk filenames.
    pub fn as_string(&self) -> String {
        format!(
            "{}:{}:{}:{}:{}",
            self.source.to_hex(),
            self.target.to_hex(),
            self.algorithm,
            self.params,
            self.variant
        )
    }
}

struct Entry {
    sim: Arc<Similarity>,
    bytes: u64,
    last_used: u64,
}

struct Inner {
    entries: HashMap<String, Entry>,
    clock: u64,
    bytes: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    disk_loads: u64,
    /// File names quarantined but not yet re-persisted — non-empty means
    /// the cache is integrity-degraded (`/healthz` reports it).
    pending_integrity: HashSet<String>,
}

/// Counters for the `/stats` endpoint, a point-in-time snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries currently resident in memory.
    pub entries: usize,
    /// Approximate bytes of the resident entries.
    pub bytes: u64,
    /// Lookups served (from memory or disk).
    pub hits: u64,
    /// Lookups that fell through to the similarity phase.
    pub misses: u64,
    /// Entries dropped by the LRU byte cap.
    pub evictions: u64,
    /// Hits that were reloaded from the persistence directory.
    pub disk_loads: u64,
    /// Corrupt or truncated persisted entries moved to quarantine (total
    /// over the server's lifetime, including the startup scan).
    pub quarantined: u64,
    /// Quarantined entries whose key has not been re-persisted yet; zero
    /// means cache integrity is restored.
    pub pending_integrity: usize,
    /// Persisted-entry reads that failed with an IO error (the entry may be
    /// fine; the lookup recomputed instead of serving it).
    pub io_errors: u64,
}

/// Byte-capped LRU cache of computed [`Similarity`] values with optional
/// crash-safe disk persistence. All methods are thread-safe.
pub struct SimilarityCache {
    inner: Mutex<Inner>,
    capacity_bytes: u64,
    dir: Option<PathBuf>,
    quarantined: AtomicU64,
    io_errors: AtomicU64,
    tmp_counter: AtomicU64,
}

impl SimilarityCache {
    /// Creates a cache holding at most `capacity_bytes` of similarity data
    /// in memory, persisting entries under `dir` when given.
    ///
    /// When a directory is configured, every persisted entry is verified up
    /// front: corrupt or truncated files are quarantined immediately (never
    /// fatal), so the server knows its integrity state before the first
    /// request.
    pub fn new(capacity_bytes: u64, dir: Option<PathBuf>) -> std::io::Result<Self> {
        if let Some(d) = &dir {
            std::fs::create_dir_all(d)?;
        }
        let cache = Self {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                clock: 0,
                bytes: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
                disk_loads: 0,
                pending_integrity: HashSet::new(),
            }),
            capacity_bytes,
            dir,
            quarantined: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
            tmp_counter: AtomicU64::new(0),
        };
        cache.scan_persisted();
        Ok(cache)
    }

    /// FNV-1a 64-bit over the flat key string — stable across runs, so a
    /// restarted server finds the previous process's persisted entries.
    fn file_name(key: &CacheKey) -> String {
        format!("{:016x}.sim.json", fnv1a_64(key.as_string().as_bytes()))
    }

    /// Verifies every persisted entry, quarantining the unreadable ones.
    /// Entries are not loaded into memory (lookups stay lazy); this only
    /// establishes the integrity state a fresh server reports.
    fn scan_persisted(&self) {
        let Some(dir) = &self.dir else { return };
        let Ok(listing) = std::fs::read_dir(dir) else { return };
        for entry in listing.flatten() {
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().to_string();
            if !name.ends_with(".sim.json") {
                continue;
            }
            let verdict = std::fs::read_to_string(&path)
                .map_err(|e| format!("read: {e}"))
                .and_then(|text| from_checksummed_str(&text).map(|_| ()));
            if let Err(reason) = verdict {
                self.quarantine(&path, &name, &reason);
            }
        }
    }

    /// Moves a corrupt persisted entry into `quarantine/` (falling back to
    /// deletion if the move fails) and records the integrity debt.
    fn quarantine(&self, path: &Path, name: &str, reason: &str) {
        eprintln!("serve: quarantining corrupt cache entry {}: {reason}", path.display());
        if let Some(dir) = &self.dir {
            let qdir = dir.join("quarantine");
            let moved = std::fs::create_dir_all(&qdir)
                .and_then(|()| std::fs::rename(path, qdir.join(name)));
            if moved.is_err() {
                let _ = std::fs::remove_file(path);
            }
        }
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock().expect("cache lock");
        inner.pending_integrity.insert(name.to_string());
    }

    /// Looks up `key`, consulting memory first, then the persistence
    /// directory. Returns the similarity and its approximate byte size.
    /// Counts a hit (including disk reloads) or a miss in the stats.
    ///
    /// A persisted entry that fails its checksum or length check is
    /// quarantined and the lookup returns `None` — the caller recomputes,
    /// and the fresh insert restores the entry (and the integrity state).
    pub fn get(&self, key: &CacheKey) -> Option<(Arc<Similarity>, u64)> {
        let flat = key.as_string();
        {
            let mut inner = self.inner.lock().expect("cache lock");
            inner.clock += 1;
            let clock = inner.clock;
            if let Some(e) = inner.entries.get_mut(&flat) {
                e.last_used = clock;
                let out = (Arc::clone(&e.sim), e.bytes);
                inner.hits += 1;
                return Some(out);
            }
        }
        // Cold in memory: try disk outside the lock (I/O under a mutex would
        // serialize all workers behind one file read).
        let dir = self.dir.as_ref()?;
        let name = Self::file_name(key);
        let path = dir.join(&name);
        let text = if fault::active(FAULT_SITE_READ) == Some(FaultKind::IoError) {
            Err(std::io::Error::other("injected fault: cache read IO error"))
        } else {
            std::fs::read_to_string(&path)
        };
        let text = match text {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
            Err(e) => {
                // The entry may be intact; an IO error is an environment
                // problem, not evidence of corruption — recompute without
                // quarantining, and count it so /healthz can report flaky
                // storage.
                eprintln!("serve: cache read {} failed ({e}); recomputing", path.display());
                self.io_errors.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        let sim = match from_checksummed_str(&text) {
            Ok(s) => Arc::new(s),
            Err(reason) => {
                self.quarantine(&path, &name, &reason);
                return None;
            }
        };
        let bytes = sim.approx_bytes() as u64;
        let mut inner = self.inner.lock().expect("cache lock");
        inner.hits += 1;
        inner.disk_loads += 1;
        self.insert_locked(&mut inner, flat, Arc::clone(&sim), bytes);
        Some((sim, bytes))
    }

    /// Records that a lookup missed (the caller is about to compute).
    pub fn note_miss(&self) {
        self.inner.lock().expect("cache lock").misses += 1;
    }

    /// Inserts a freshly computed similarity, persisting it to disk when a
    /// directory is configured and the value serializes (finite entries).
    ///
    /// The persist is atomic: the entry is written to a unique `.tmp` file
    /// and renamed into place, so a crash mid-write can never leave a
    /// truncated entry under the final name. A successful persist clears
    /// the entry's quarantine debt, returning `/healthz` to ready once
    /// every quarantined key has been recomputed.
    pub fn insert(&self, key: &CacheKey, sim: Arc<Similarity>) -> u64 {
        let bytes = sim.approx_bytes() as u64;
        if let Some(dir) = &self.dir {
            // Non-finite entries cannot round-trip through JSON and are kept
            // in memory only; `to_checksummed_string` refuses them.
            if let Ok(text) = to_checksummed_string(&sim) {
                let name = Self::file_name(key);
                match self.persist_atomic(dir, &name, &text) {
                    Ok(()) => {
                        let mut inner = self.inner.lock().expect("cache lock");
                        inner.pending_integrity.remove(&name);
                    }
                    Err(e) => eprintln!(
                        "serve: cannot persist cache entry {}: {e}",
                        dir.join(&name).display()
                    ),
                }
            }
        }
        let mut inner = self.inner.lock().expect("cache lock");
        self.insert_locked(&mut inner, key.as_string(), sim, bytes);
        bytes
    }

    /// Write-temp-then-rename persistence. The temp name is unique per
    /// (process, insert), so concurrent workers persisting the same key
    /// never interleave partial writes; whichever rename lands last wins
    /// with a complete entry either way.
    fn persist_atomic(&self, dir: &Path, name: &str, text: &str) -> std::io::Result<()> {
        if fault::active(FAULT_SITE_PERSIST) == Some(FaultKind::Truncate) {
            // Simulate the torn write the atomic protocol exists to prevent
            // (a crash between write and rename on a non-atomic path):
            // half an entry lands under the final name.
            let torn = &text.as_bytes()[..text.len() / 2];
            return std::fs::write(dir.join(name), torn);
        }
        let tmp = dir.join(format!(
            "{name}.{}.{}.tmp",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, dir.join(name)).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })
    }

    fn insert_locked(&self, inner: &mut Inner, flat: String, sim: Arc<Similarity>, bytes: u64) {
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(prev) = inner.entries.insert(flat, Entry { sim, bytes, last_used: clock }) {
            inner.bytes -= prev.bytes;
        }
        inner.bytes += bytes;
        // Evict least-recently-used entries down to the cap, but always keep
        // the newest entry even when it alone exceeds the budget.
        while inner.bytes > self.capacity_bytes && inner.entries.len() > 1 {
            let victim = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty cache");
            let e = inner.entries.remove(&victim).expect("victim present");
            inner.bytes -= e.bytes;
            inner.evictions += 1;
        }
    }

    /// Whether every quarantined entry has been re-persisted — the cache
    /// integrity component of `/healthz` readiness.
    pub fn integrity_ok(&self) -> bool {
        self.inner.lock().expect("cache lock").pending_integrity.is_empty()
    }

    /// Point-in-time counters for `/stats`.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock");
        CacheStats {
            entries: inner.entries.len(),
            bytes: inner.bytes,
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            disk_loads: inner.disk_loads,
            quarantined: self.quarantined.load(Ordering::Relaxed),
            pending_integrity: inner.pending_integrity.len(),
            io_errors: self.io_errors.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalign_graph::Graph;
    use graphalign_linalg::DenseMatrix;

    fn key(tag: &str) -> CacheKey {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        CacheKey {
            source: g.content_digest(),
            target: g.content_digest(),
            algorithm: tag.to_string(),
            params: "default".to_string(),
            variant: "generic",
        }
    }

    fn sim(rows: usize) -> Arc<Similarity> {
        Arc::new(Similarity::Dense(DenseMatrix::from_vec(rows, 1, vec![1.0; rows])))
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("graphalign-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_hit_after_insert() {
        let c = SimilarityCache::new(1 << 20, None).unwrap();
        assert!(c.get(&key("A")).is_none());
        c.note_miss();
        c.insert(&key("A"), sim(4));
        let (got, bytes) = c.get(&key("A")).expect("hit");
        assert_eq!(got.rows(), 4);
        assert!(bytes > 0);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!(c.integrity_ok());
    }

    #[test]
    fn lru_eviction_respects_byte_cap_and_recency() {
        // Each dense 4x1 entry is 32 payload bytes + struct overhead; a cap
        // of ~2.5 entries forces the least-recently-used one out.
        let one = sim(4).approx_bytes() as u64;
        let c = SimilarityCache::new(one * 5 / 2, None).unwrap();
        c.insert(&key("A"), sim(4));
        c.insert(&key("B"), sim(4));
        assert!(c.get(&key("A")).is_some(), "touch A so B becomes LRU");
        c.insert(&key("C"), sim(4));
        assert!(c.get(&key("B")).is_none(), "B was evicted");
        assert!(c.get(&key("A")).is_some());
        assert!(c.get(&key("C")).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn disk_round_trip_survives_eviction() {
        let dir = temp_dir("roundtrip");
        {
            let c = SimilarityCache::new(1 << 20, Some(dir.clone())).unwrap();
            c.insert(&key("A"), sim(4));
        }
        // A fresh cache (fresh process, conceptually) reloads from disk.
        let c = SimilarityCache::new(1 << 20, Some(dir.clone())).unwrap();
        let (got, _) = c.get(&key("A")).expect("disk hit");
        assert_eq!(got.rows(), 4);
        assert_eq!(c.stats().disk_loads, 1);
        assert_eq!(c.stats().quarantined, 0, "clean entries never quarantine");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn distinct_keys_do_not_alias() {
        let c = SimilarityCache::new(1 << 20, None).unwrap();
        c.insert(&key("A"), sim(4));
        assert!(c.get(&key("B")).is_none());
        let mut k = key("A");
        k.variant = "auction";
        assert!(c.get(&k).is_none(), "variant is part of the key");
    }

    #[test]
    fn no_stray_tmp_files_after_persist() {
        let dir = temp_dir("tmpfiles");
        let c = SimilarityCache::new(1 << 20, Some(dir.clone())).unwrap();
        c.insert(&key("A"), sim(4));
        c.insert(&key("A"), sim(4)); // overwrite is atomic too
        let strays: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(strays.is_empty(), "persist left temp files: {strays:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_entry_is_quarantined_then_restored_by_reinsert() {
        let dir = temp_dir("quarantine");
        let name;
        {
            let c = SimilarityCache::new(1 << 20, Some(dir.clone())).unwrap();
            c.insert(&key("A"), sim(4));
            name = SimilarityCache::file_name(&key("A"));
        }
        // Corrupt the persisted entry (flip one payload bit).
        let path = dir.join(&name);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        // A fresh cache quarantines it at startup and reports the debt.
        let c = SimilarityCache::new(1 << 20, Some(dir.clone())).unwrap();
        assert!(!c.integrity_ok(), "startup scan must flag the corruption");
        let s = c.stats();
        assert_eq!((s.quarantined, s.pending_integrity), (1, 1));
        assert!(!path.exists(), "corrupt entry removed from the live directory");
        assert!(dir.join("quarantine").join(&name).exists(), "entry preserved for forensics");
        // The lookup misses (recompute path), never errors.
        assert!(c.get(&key("A")).is_none());
        // Recomputing and re-inserting restores integrity.
        c.insert(&key("A"), sim(4));
        assert!(c.integrity_ok());
        assert_eq!(c.stats().pending_integrity, 0);
        assert!(c.get(&key("A")).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_entry_detected_at_read_time() {
        let dir = temp_dir("truncated");
        let c = SimilarityCache::new(1 << 20, Some(dir.clone())).unwrap();
        c.insert(&key("A"), sim(8));
        let name = SimilarityCache::file_name(&key("A"));
        let path = dir.join(&name);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 3]).unwrap();
        // Evicted from memory? No — same cache still holds it in memory, so
        // use a fresh one (lazy: the startup scan quarantines instead).
        let fresh = SimilarityCache::new(1 << 20, Some(dir.clone())).unwrap();
        assert!(fresh.get(&key("A")).is_none());
        assert_eq!(fresh.stats().quarantined, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
