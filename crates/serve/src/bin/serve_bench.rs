//! Measures the serving layer's cold-vs-warm latency: start an in-process
//! server, upload a generated graph pair, run the same alignment query
//! twice, and report both end-to-end latencies plus the cache counters the
//! second response carries. The warm run must show `cache_hits: 1` and a
//! mapping bit-identical to the cold run.
//!
//! Usage: `serve_bench [--algorithm REGAL] [--assignment nn] [--n 300]
//! [--seed 7] [--workers 2]`

use graphalign_json::Json;
use graphalign_serve::{http, start, ServeConfig};
use std::time::{Duration, Instant};

fn flag(args: &[String], name: &str, default: &str) -> String {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

fn post(addr: &str, path: &str, body: &[u8]) -> Json {
    let resp = http::request(addr, "POST", path, body).expect("request");
    assert_eq!(resp.status, 200, "POST {path}: {}", resp.body);
    resp.json()
}

/// Submits the query, honoring admission control: a `429` waits out the
/// server's `Retry-After` (capped so a confused header can't park the
/// bench) and resubmits instead of failing.
fn submit(addr: &str, job_body: &str) -> usize {
    loop {
        let resp = http::request(addr, "POST", "/jobs", job_body.as_bytes()).expect("submit");
        if resp.status == 429 {
            let secs: u64 =
                resp.header("retry-after").and_then(|v| v.parse().ok()).unwrap_or(1).clamp(1, 30);
            std::thread::sleep(Duration::from_secs(secs));
            continue;
        }
        assert_eq!(resp.status, 200, "POST /jobs: {}", resp.body);
        return resp.json().get("job").and_then(Json::as_f64).expect("job id") as usize;
    }
}

/// Submits the query and polls to completion, returning the end-to-end
/// latency and the final poll body. The poll backs off exponentially
/// (1 ms → 64 ms cap) instead of hammering the server every millisecond —
/// for multi-second cold jobs the old fixed 1 ms poll burned a connection
/// per millisecond for no better latency resolution than the job itself.
fn run_job(addr: &str, job_body: &str) -> (f64, Json) {
    let t0 = Instant::now();
    let id = submit(addr, job_body);
    let mut backoff = Duration::from_millis(1);
    loop {
        let resp = http::request(addr, "GET", &format!("/jobs/{id}"), b"").expect("poll");
        assert_eq!(resp.status, 200, "poll: {}", resp.body);
        let body = resp.json();
        let status = body.get("status").and_then(Json::as_str).expect("status").to_string();
        match status.as_str() {
            "queued" | "running" => {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(64));
            }
            "done" => return (t0.elapsed().as_secs_f64(), body),
            other => panic!("job {id} ended as {other}: {}", resp.body),
        }
    }
}

fn edge_list(g: &graphalign_graph::Graph) -> String {
    let mut out = Vec::new();
    graphalign_graph::io::write_edge_list(g, &mut out).expect("serialize graph");
    String::from_utf8(out).expect("edge list is ASCII")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let algorithm = flag(&args, "--algorithm", "REGAL");
    let assignment = flag(&args, "--assignment", "nn");
    let n: usize = flag(&args, "--n", "300").parse().expect("--n");
    let seed: u64 = flag(&args, "--seed", "7").parse().expect("--seed");
    let workers: usize = flag(&args, "--workers", "2").parse().expect("--workers");

    let source = graphalign_gen::powerlaw_cluster(n, 4, 0.3, seed);
    let instance = graphalign_noise::make_instance(
        &source,
        &graphalign_noise::NoiseConfig::new(graphalign_noise::NoiseModel::OneWay, 0.02),
        seed + 1,
    );

    let server = start(ServeConfig { workers, ..ServeConfig::default() }).expect("start server");
    let addr = server.addr().to_string();

    let src = post(&addr, "/graphs", edge_list(&source).as_bytes());
    let tgt = post(&addr, "/graphs", edge_list(&instance.target).as_bytes());
    let job_body = format!(
        "{{\"source\":{:?},\"target\":{:?},\"algorithm\":{algorithm:?},\"assignment\":{assignment:?}}}",
        src.get("id").and_then(Json::as_str).expect("source id"),
        tgt.get("id").and_then(Json::as_str).expect("target id"),
    );

    let (cold_secs, cold) = run_job(&addr, &job_body);
    let (warm_secs, warm) = run_job(&addr, &job_body);

    let counter = |body: &Json, name: &str| {
        body.get("telemetry")
            .and_then(|t| t.get("ops"))
            .and_then(|o| o.get(name))
            .and_then(Json::as_f64)
            .unwrap_or(0.0) as u64
    };
    assert_eq!(counter(&warm, "cache_hits"), 1, "warm run must hit the cache");
    assert_eq!(
        warm.get("mapping"),
        cold.get("mapping"),
        "warm mapping must be bit-identical to the cold run"
    );

    let report = Json::Obj(vec![
        ("algorithm".to_string(), Json::Str(algorithm)),
        ("assignment".to_string(), Json::Str(assignment)),
        ("nodes".to_string(), Json::Num(n as f64)),
        ("workers".to_string(), Json::Num(workers as f64)),
        ("cold_secs".to_string(), Json::Num(cold_secs)),
        ("warm_secs".to_string(), Json::Num(warm_secs)),
        ("speedup".to_string(), Json::Num(cold_secs / warm_secs.max(1e-9))),
        ("cache_bytes".to_string(), Json::Num(counter(&warm, "cache_bytes") as f64)),
    ]);
    println!("{}", report.to_string_pretty());

    server.shutdown();
    server.wait();
}
