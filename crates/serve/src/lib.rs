//! Alignment-as-a-service: a resident server over the `graphalign` pipeline.
//!
//! `graphalign serve` keeps the process warm between queries so repeated
//! alignments of the same graph pair skip the expensive embedding /
//! similarity phase: computed [`graphalign_linalg::Similarity`] values
//! (dense, low-rank, or sparse — the PR-5 pipeline currency) are cached
//! keyed by `(graph content digest, algorithm, params, variant)` and only
//! the cheap assignment phase runs on a warm hit. Results are bit-identical
//! between cold and warm runs and across worker-thread counts.
//!
//! # Protocol
//!
//! Plain HTTP/1.1 with JSON bodies, one request per connection:
//!
//! | Endpoint | Effect |
//! |---|---|
//! | `POST /graphs` (edge-list text body) | Registers a graph; returns `{"id": <digest hex>, "nodes", "edges"}`. Uploading the same structure twice (any edge order) yields the same id. |
//! | `POST /jobs` (`{"source", "target", "algorithm", "assignment"?, "timeout"?}`) | Queues an alignment; returns `{"job": <id>, "status": "queued"}`. |
//! | `GET /jobs/<id>` | Polls: `{"status": queued\|running\|done\|error\|timeout\|cancelled, "mapping"?, "error"?, "telemetry"?}`. |
//! | `POST /jobs/<id>/cancel` | Trips the job's cooperative budget. |
//! | `GET /stats` | Cache and job-table counters. |
//! | `POST /shutdown` | Clean shutdown: drains queued jobs as cancelled, joins workers. |
//!
//! The per-job `telemetry` block is the same [`CellTelemetry`] JSON the
//! experiment harness records, extended with `cache_hits` / `cache_misses`
//! / `cache_bytes` ops counters — a warm response shows `cache_hits: 1` and
//! no `"similarity"` phase span, which is how the tests verify the
//! embedding phase was genuinely skipped.

#![warn(missing_docs)]

pub mod cache;
pub mod http;
pub mod jobs;

use cache::{CacheStats, SimilarityCache};
use graphalign_graph::{io as graph_io, Graph};
use graphalign_json::Json;
use jobs::{JobStatus, JobTable};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

// Re-exported so callers use one crate for the doc links above.
pub use graphalign_bench::telemetry::CellTelemetry as ResponseTelemetry;

/// Registered graphs, keyed by content-digest hex. Two uploads of the same
/// structure (any edge order) collapse to one entry — and therefore to the
/// same similarity-cache keys.
#[derive(Default)]
pub struct GraphStore {
    map: Mutex<HashMap<String, Arc<Graph>>>,
}

impl GraphStore {
    /// The graph registered under `id`.
    pub fn get(&self, id: &str) -> Option<Arc<Graph>> {
        self.map.lock().expect("graph store lock").get(id).cloned()
    }

    /// Registers `g`, returning its digest id and whether it was new.
    pub fn insert(&self, g: Graph) -> (String, bool) {
        let id = g.content_digest().to_hex();
        let mut map = self.map.lock().expect("graph store lock");
        let new = !map.contains_key(&id);
        if new {
            map.insert(id.clone(), Arc::new(g));
        }
        (id, new)
    }

    /// Number of registered graphs.
    pub fn len(&self) -> usize {
        self.map.lock().expect("graph store lock").len()
    }

    /// Whether no graphs are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Server configuration; `Default` binds an ephemeral localhost port with
/// two workers, a 256 MiB cache, and no disk persistence or default
/// deadline.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `"127.0.0.1:7464"`; port 0 picks an ephemeral one.
    pub addr: String,
    /// Worker threads executing jobs (the pool bound).
    pub workers: usize,
    /// In-memory cache capacity in bytes.
    pub cache_bytes: u64,
    /// Directory persisting cache entries across restarts, when set.
    pub cache_dir: Option<PathBuf>,
    /// Deadline applied to jobs that don't carry their own `timeout`.
    pub default_timeout: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            cache_bytes: 256 << 20,
            cache_dir: None,
            default_timeout: None,
        }
    }
}

/// Shared state behind every connection handler and worker.
pub struct ServerState {
    /// Registered graphs.
    pub graphs: GraphStore,
    /// All accepted jobs.
    pub jobs: JobTable,
    /// The keyed similarity cache.
    pub cache: SimilarityCache,
    default_timeout: Option<Duration>,
    workers: usize,
    addr: SocketAddr,
    sender: Mutex<Option<Sender<usize>>>,
    shutdown: AtomicBool,
}

impl ServerState {
    /// Initiates shutdown once: flags the accept loop, cancels unfinished
    /// jobs, closes the job channel (workers drain and exit), and wakes the
    /// acceptor with a dummy connection.
    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.jobs.cancel_all();
        self.sender.lock().expect("sender lock").take();
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running server; dropping the handle does NOT stop it — call
/// [`ServerHandle::shutdown`] (or `POST /shutdown`) then
/// [`ServerHandle::wait`].
pub struct ServerHandle {
    state: Arc<ServerState>,
    accept: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Initiates a clean shutdown (idempotent, non-blocking).
    pub fn shutdown(&self) {
        self.state.begin_shutdown();
    }

    /// Blocks until the accept loop and all workers have exited.
    pub fn wait(self) {
        let _ = self.accept.join();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// Starts the server: binds, spawns the worker pool and the accept loop,
/// and returns immediately.
pub fn start(config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let cache = SimilarityCache::new(config.cache_bytes, config.cache_dir.clone())?;
    let (tx, rx) = std::sync::mpsc::channel::<usize>();
    let workers = config.workers.max(1);
    let state = Arc::new(ServerState {
        graphs: GraphStore::default(),
        jobs: JobTable::default(),
        cache,
        default_timeout: config.default_timeout,
        workers,
        addr,
        sender: Mutex::new(Some(tx)),
        shutdown: AtomicBool::new(false),
    });
    let rx = Arc::new(Mutex::new(rx));
    let worker_handles: Vec<JoinHandle<()>> = (0..workers)
        .map(|i| {
            let state = Arc::clone(&state);
            let rx = Arc::clone(&rx);
            std::thread::Builder::new()
                .name(format!("graphalign-serve-worker-{i}"))
                .spawn(move || worker_loop(&state, &rx))
                .expect("spawn worker thread")
        })
        .collect();
    let accept = {
        let state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("graphalign-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &state))
            .expect("spawn accept thread")
    };
    Ok(ServerHandle { state, accept, workers: worker_handles })
}

fn worker_loop(state: &Arc<ServerState>, rx: &Mutex<Receiver<usize>>) {
    loop {
        // Take the lock only to receive; execution runs unlocked so the
        // pool genuinely works `workers` jobs at a time.
        let job = rx.lock().expect("worker receiver lock").recv();
        match job {
            Ok(id) => jobs::execute(state, id),
            Err(_) => break, // channel closed: shutdown
        }
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    for conn in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let state = Arc::clone(state);
        // Thread-per-connection: requests are tiny and one-shot
        // (Connection: close), the heavy lifting happens on the worker pool.
        let _ = std::thread::Builder::new()
            .name("graphalign-serve-conn".to_string())
            .spawn(move || handle_connection(stream, &state));
    }
}

fn handle_connection(mut stream: TcpStream, state: &Arc<ServerState>) {
    let request = match http::read_request(&mut stream) {
        Ok(r) => r,
        Err(e) => {
            respond_error(&mut stream, 400, &e);
            return;
        }
    };
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    let (status, body) = match (request.method.as_str(), segments.as_slice()) {
        ("POST", ["graphs"]) => post_graph(state, &request),
        ("POST", ["jobs"]) => post_job(state, &request),
        ("GET", ["jobs", id]) => get_job(state, id),
        ("POST", ["jobs", id, "cancel"]) => cancel_job(state, id),
        ("GET", ["stats"]) => (200, stats_json(state)),
        ("POST", ["shutdown"]) => {
            state.begin_shutdown();
            (200, Json::Obj(vec![("status".into(), Json::Str("shutting down".into()))]))
        }
        (_, ["graphs" | "jobs" | "stats" | "shutdown", ..]) => {
            (405, error_json("method not allowed for this endpoint"))
        }
        _ => (404, error_json(&format!("no such endpoint {:?}", request.path))),
    };
    http::write_response(
        &mut stream,
        status,
        "application/json",
        body.to_string_compact().as_bytes(),
    );
}

fn respond_error(stream: &mut TcpStream, status: u16, message: &str) {
    http::write_response(
        stream,
        status,
        "application/json",
        error_json(message).to_string_compact().as_bytes(),
    );
}

fn error_json(message: &str) -> Json {
    Json::Obj(vec![("error".to_string(), Json::Str(message.to_string()))])
}

fn post_graph(state: &Arc<ServerState>, request: &http::Request) -> (u16, Json) {
    let text = match request.body_utf8() {
        Ok(t) => t,
        Err(e) => return (400, error_json(&e)),
    };
    let parsed = match graph_io::parse_edge_list(text) {
        Ok(p) => p,
        Err(e) => return (400, error_json(&format!("bad edge list: {e}"))),
    };
    let (nodes, edges) = (parsed.graph.node_count(), parsed.graph.edge_count());
    let (id, new) = state.graphs.insert(parsed.graph);
    (
        200,
        Json::Obj(vec![
            ("id".to_string(), Json::Str(id)),
            ("nodes".to_string(), Json::Num(nodes as f64)),
            ("edges".to_string(), Json::Num(edges as f64)),
            ("new".to_string(), Json::Bool(new)),
        ]),
    )
}

fn post_job(state: &Arc<ServerState>, request: &http::Request) -> (u16, Json) {
    let body = match request
        .body_utf8()
        .and_then(|t| graphalign_json::from_str(t).map_err(|e| format!("bad JSON body: {e:?}")))
    {
        Ok(b) => b,
        Err(e) => return (400, error_json(&e)),
    };
    let mut job_request = match jobs::parse_request(&body, state.default_timeout) {
        Ok(r) => r,
        Err(e) => return (400, error_json(&e)),
    };
    if let Err(e) = jobs::validate(state, &mut job_request) {
        return (400, error_json(&e));
    }
    let id = state.jobs.create(job_request);
    let sender = state.sender.lock().expect("sender lock");
    match sender.as_ref() {
        Some(tx) if tx.send(id).is_ok() => (
            200,
            Json::Obj(vec![
                ("job".to_string(), Json::Num(id as f64)),
                ("status".to_string(), Json::Str("queued".to_string())),
            ]),
        ),
        _ => (503, error_json("server is shutting down")),
    }
}

fn get_job(state: &Arc<ServerState>, id: &str) -> (u16, Json) {
    let Ok(id) = id.parse::<usize>() else {
        return (400, error_json("job ids are integers"));
    };
    match state.jobs.poll_json(id) {
        Some(body) => (200, body),
        None => (404, error_json(&format!("no job {id}"))),
    }
}

fn cancel_job(state: &Arc<ServerState>, id: &str) -> (u16, Json) {
    let Ok(id) = id.parse::<usize>() else {
        return (400, error_json("job ids are integers"));
    };
    match state.jobs.request_cancel(id) {
        Some(_) => (
            200,
            Json::Obj(vec![
                ("job".to_string(), Json::Num(id as f64)),
                ("status".to_string(), Json::Str("cancel requested".to_string())),
            ]),
        ),
        None => (404, error_json(&format!("no job {id}"))),
    }
}

fn stats_json(state: &Arc<ServerState>) -> Json {
    let CacheStats { entries, bytes, hits, misses, evictions, disk_loads } = state.cache.stats();
    Json::Obj(vec![
        (
            "cache".to_string(),
            Json::Obj(vec![
                ("entries".to_string(), Json::Num(entries as f64)),
                ("bytes".to_string(), Json::Num(bytes as f64)),
                ("hits".to_string(), Json::Num(hits as f64)),
                ("misses".to_string(), Json::Num(misses as f64)),
                ("evictions".to_string(), Json::Num(evictions as f64)),
                ("disk_loads".to_string(), Json::Num(disk_loads as f64)),
            ]),
        ),
        (
            "jobs".to_string(),
            Json::Obj(vec![
                ("queued".to_string(), Json::Num(state.jobs.count(JobStatus::Queued) as f64)),
                ("running".to_string(), Json::Num(state.jobs.count(JobStatus::Running) as f64)),
                ("done".to_string(), Json::Num(state.jobs.count(JobStatus::Done) as f64)),
                ("error".to_string(), Json::Num(state.jobs.count(JobStatus::Error) as f64)),
                ("timeout".to_string(), Json::Num(state.jobs.count(JobStatus::TimedOut) as f64)),
                ("cancelled".to_string(), Json::Num(state.jobs.count(JobStatus::Cancelled) as f64)),
            ]),
        ),
        ("graphs".to_string(), Json::Num(state.graphs.len() as f64)),
        ("workers".to_string(), Json::Num(state.workers as f64)),
    ])
}
