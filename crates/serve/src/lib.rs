//! Alignment-as-a-service: a resident server over the `graphalign` pipeline.
//!
//! `graphalign serve` keeps the process warm between queries so repeated
//! alignments of the same graph pair skip the expensive embedding /
//! similarity phase: computed [`graphalign_linalg::Similarity`] values
//! (dense, low-rank, or sparse — the PR-5 pipeline currency) are cached
//! keyed by `(graph content digest, algorithm, params, variant)` and only
//! the cheap assignment phase runs on a warm hit. Results are bit-identical
//! between cold and warm runs and across worker-thread counts.
//!
//! # Protocol
//!
//! Plain HTTP/1.1 with JSON bodies, one request per connection:
//!
//! | Endpoint | Effect |
//! |---|---|
//! | `POST /graphs` (edge-list text body) | Registers a graph; returns `{"id": <digest hex>, "nodes", "edges"}`. Uploading the same structure twice (any edge order) yields the same id. |
//! | `POST /jobs` (`{"source", "target", "algorithm", "assignment"?, "timeout"?}`) | Queues an alignment; returns `{"job": <id>, "status": "queued"}`, or `429` with a `Retry-After` header when the server is saturated. |
//! | `GET /jobs/<id>` | Polls: `{"status": queued\|running\|done\|error\|timeout\|cancelled, "mapping"?, "error"?, "error_class"?, "attempts"?, "telemetry"?}`. |
//! | `POST /jobs/<id>/cancel` | Trips the job's cooperative budget. |
//! | `GET /healthz` | Readiness: `200` ready / `503` degraded, with queue depth, cache integrity, and worker liveness. |
//! | `GET /stats` | Cache, job-table, and resilience counters. |
//! | `POST /shutdown` | Clean shutdown: drains queued jobs as cancelled, joins workers. |
//!
//! The per-job `telemetry` block is the same [`CellTelemetry`] JSON the
//! experiment harness records, extended with `cache_hits` / `cache_misses`
//! / `cache_bytes` ops counters — a warm response shows `cache_hits: 1` and
//! no `"similarity"` phase span, which is how the tests verify the
//! embedding phase was genuinely skipped.
//!
//! # Hostile weather
//!
//! The server is built to degrade loudly and recover, never to wedge:
//!
//! * **Admission control** — a bounded job queue (`max_queued`) and an
//!   in-flight working-set cap (`max_inflight_bytes`). A saturated server
//!   answers `429` with a `Retry-After` computed from the queue depth and
//!   the recent median job latency, instead of queueing unboundedly.
//! * **Connection deadlines** — accepted sockets carry read/write deadlines
//!   (`io_timeout`) and a request-body byte cap, so slow-loris clients get
//!   `408` and oversized uploads `413` while the handler thread survives.
//! * **Panic-isolated workers** — job execution runs under `catch_unwind`;
//!   a panicking algorithm yields a classified job error (`error_class:
//!   "panic"`), not a dead worker. Numeric failures retry with exponential
//!   backoff (fresh attempts bypass the cache). Counters: `retries`,
//!   `panics_contained`, `rejected_429`.
//! * **Crash-safe cache** — persisted entries are checksummed and written
//!   atomically; corrupt or truncated entries quarantine and recompute (see
//!   [`cache`]). `GET /healthz` reports degraded until integrity recovers.

#![warn(missing_docs)]

pub mod cache;
pub mod http;
pub mod jobs;

use cache::{CacheStats, SimilarityCache};
use graphalign_graph::{io as graph_io, Graph};
use graphalign_json::Json;
use jobs::{JobStatus, JobTable};
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

// Re-exported so callers use one crate for the doc links above.
pub use graphalign_bench::telemetry::CellTelemetry as ResponseTelemetry;

/// How many completed-job latencies feed the `Retry-After` estimate.
const LATENCY_WINDOW: usize = 64;

/// Registered graphs, keyed by content-digest hex. Two uploads of the same
/// structure (any edge order) collapse to one entry — and therefore to the
/// same similarity-cache keys.
#[derive(Default)]
pub struct GraphStore {
    map: Mutex<HashMap<String, Arc<Graph>>>,
}

impl GraphStore {
    /// The graph registered under `id`.
    pub fn get(&self, id: &str) -> Option<Arc<Graph>> {
        self.map.lock().expect("graph store lock").get(id).cloned()
    }

    /// Registers `g`, returning its digest id and whether it was new.
    pub fn insert(&self, g: Graph) -> (String, bool) {
        let id = g.content_digest().to_hex();
        let mut map = self.map.lock().expect("graph store lock");
        let new = !map.contains_key(&id);
        if new {
            map.insert(id.clone(), Arc::new(g));
        }
        (id, new)
    }

    /// Number of registered graphs.
    pub fn len(&self) -> usize {
        self.map.lock().expect("graph store lock").len()
    }

    /// Whether no graphs are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Server configuration; `Default` binds an ephemeral localhost port with
/// two workers, a 256 MiB cache, no disk persistence or default deadline,
/// a 64-job queue, a 1 GiB in-flight cap, two numeric retries, and a 10 s
/// connection deadline.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `"127.0.0.1:7464"`; port 0 picks an ephemeral one.
    pub addr: String,
    /// Worker threads executing jobs (the pool bound).
    pub workers: usize,
    /// In-memory cache capacity in bytes.
    pub cache_bytes: u64,
    /// Directory persisting cache entries across restarts, when set.
    pub cache_dir: Option<PathBuf>,
    /// Deadline applied to jobs that don't carry their own `timeout`.
    pub default_timeout: Option<Duration>,
    /// Admission bound: jobs waiting for a worker before `POST /jobs`
    /// answers `429`.
    pub max_queued: usize,
    /// Admission bound: estimated working-set bytes of queued + running
    /// jobs before `POST /jobs` answers `429`.
    pub max_inflight_bytes: u64,
    /// Extra attempts granted to jobs failing with a *numeric* error
    /// (fresh attempts bypass the cache). Panics, timeouts, and bad
    /// instances never retry.
    pub job_retries: u32,
    /// Read/write deadline on accepted connections; `None` disables it
    /// (tests only — a deadline-less server can be slow-lorised).
    pub io_timeout: Option<Duration>,
    /// Request-body byte cap; larger uploads answer `413`.
    pub max_body_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            cache_bytes: 256 << 20,
            cache_dir: None,
            default_timeout: None,
            max_queued: 64,
            max_inflight_bytes: 1 << 30,
            job_retries: 2,
            io_timeout: Some(Duration::from_secs(10)),
            max_body_bytes: http::MAX_BODY_BYTES,
        }
    }
}

/// Resilience counters reported by `/stats` and `/healthz`.
#[derive(Default)]
pub struct Counters {
    /// Numeric-failure retry attempts performed by workers.
    pub retries: AtomicU64,
    /// Job panics caught by worker isolation (`catch_unwind`).
    pub panics_contained: AtomicU64,
    /// `POST /jobs` submissions refused by admission control.
    pub rejected_429: AtomicU64,
}

/// Shared state behind every connection handler and worker.
pub struct ServerState {
    /// Registered graphs.
    pub graphs: GraphStore,
    /// All accepted jobs.
    pub jobs: JobTable,
    /// The keyed similarity cache.
    pub cache: SimilarityCache,
    /// Resilience counters.
    pub counters: Counters,
    default_timeout: Option<Duration>,
    workers: usize,
    max_queued: usize,
    max_inflight_bytes: u64,
    job_retries: u32,
    io_timeout: Option<Duration>,
    max_body_bytes: usize,
    addr: SocketAddr,
    sender: Mutex<Option<Sender<usize>>>,
    shutdown: AtomicBool,
    /// Estimated working-set bytes of queued + running jobs.
    inflight_bytes: AtomicU64,
    /// Worker threads currently alive (liveness component of `/healthz`).
    workers_alive: AtomicUsize,
    /// Recent queue-to-terminal job latencies (the `Retry-After` basis).
    latencies: Mutex<VecDeque<Duration>>,
}

impl ServerState {
    /// Extra numeric-failure attempts workers may spend per job.
    pub fn job_retries(&self) -> u32 {
        self.job_retries
    }

    /// Records a finished job: returns its working-set estimate to the
    /// admission budget and feeds the latency window.
    pub(crate) fn finish_job(&self, est_bytes: u64, latency: Duration) {
        self.inflight_bytes.fetch_sub(est_bytes, Ordering::Relaxed);
        let mut window = self.latencies.lock().expect("latency lock");
        if window.len() == LATENCY_WINDOW {
            window.pop_front();
        }
        window.push_back(latency);
    }

    /// Median of the recent latency window (1 s when nothing completed yet,
    /// so a cold server still emits a sane `Retry-After`).
    fn median_latency(&self) -> Duration {
        let window = self.latencies.lock().expect("latency lock");
        if window.is_empty() {
            return Duration::from_secs(1);
        }
        let mut sorted: Vec<Duration> = window.iter().copied().collect();
        sorted.sort_unstable();
        sorted[sorted.len() / 2]
    }

    /// Seconds a refused client should wait: queue depth × recent median
    /// job latency, at least 1 s (whole seconds, as `Retry-After` requires).
    pub fn retry_after_secs(&self) -> u64 {
        let depth = self.jobs.count(JobStatus::Queued).max(1) as f64;
        (depth * self.median_latency().as_secs_f64()).ceil().max(1.0) as u64
    }

    /// Initiates shutdown once: flags the accept loop, cancels unfinished
    /// jobs, closes the job channel (workers drain and exit), and wakes the
    /// acceptor with a dummy connection.
    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.jobs.cancel_all();
        self.sender.lock().expect("sender lock").take();
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running server; dropping the handle does NOT stop it — call
/// [`ServerHandle::shutdown`] (or `POST /shutdown`) then
/// [`ServerHandle::wait`].
pub struct ServerHandle {
    state: Arc<ServerState>,
    accept: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Initiates a clean shutdown (idempotent, non-blocking).
    pub fn shutdown(&self) {
        self.state.begin_shutdown();
    }

    /// Blocks until the accept loop and all workers have exited.
    pub fn wait(self) {
        let _ = self.accept.join();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// Starts the server: binds, spawns the worker pool and the accept loop,
/// and returns immediately.
pub fn start(config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let cache = SimilarityCache::new(config.cache_bytes, config.cache_dir.clone())?;
    let (tx, rx) = std::sync::mpsc::channel::<usize>();
    let workers = config.workers.max(1);
    let state = Arc::new(ServerState {
        graphs: GraphStore::default(),
        jobs: JobTable::default(),
        cache,
        counters: Counters::default(),
        default_timeout: config.default_timeout,
        workers,
        max_queued: config.max_queued.max(1),
        max_inflight_bytes: config.max_inflight_bytes.max(1),
        job_retries: config.job_retries,
        io_timeout: config.io_timeout,
        max_body_bytes: config.max_body_bytes,
        addr,
        sender: Mutex::new(Some(tx)),
        shutdown: AtomicBool::new(false),
        inflight_bytes: AtomicU64::new(0),
        workers_alive: AtomicUsize::new(0),
        latencies: Mutex::new(VecDeque::new()),
    });
    let rx = Arc::new(Mutex::new(rx));
    let worker_handles: Vec<JoinHandle<()>> = (0..workers)
        .map(|i| {
            let state = Arc::clone(&state);
            let rx = Arc::clone(&rx);
            std::thread::Builder::new()
                .name(format!("graphalign-serve-worker-{i}"))
                .spawn(move || worker_loop(&state, &rx))
                .expect("spawn worker thread")
        })
        .collect();
    let accept = {
        let state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("graphalign-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &state))
            .expect("spawn accept thread")
    };
    Ok(ServerHandle { state, accept, workers: worker_handles })
}

fn worker_loop(state: &Arc<ServerState>, rx: &Mutex<Receiver<usize>>) {
    // Liveness accounting survives unwinds: should a panic ever escape the
    // job-level isolation, /healthz flips to degraded instead of the dead
    // worker going unnoticed.
    struct Alive<'a>(&'a AtomicUsize);
    impl Drop for Alive<'_> {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::SeqCst);
        }
    }
    state.workers_alive.fetch_add(1, Ordering::SeqCst);
    let _alive = Alive(&state.workers_alive);
    loop {
        // Take the lock only to receive; execution runs unlocked so the
        // pool genuinely works `workers` jobs at a time.
        let job = rx.lock().expect("worker receiver lock").recv();
        match job {
            Ok(id) => jobs::execute(state, id),
            Err(_) => break, // channel closed: shutdown
        }
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    for conn in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let state = Arc::clone(state);
        // Thread-per-connection: requests are tiny and one-shot
        // (Connection: close), the heavy lifting happens on the worker pool.
        let _ = std::thread::Builder::new()
            .name("graphalign-serve-conn".to_string())
            .spawn(move || handle_connection(stream, &state));
    }
}

fn handle_connection(mut stream: TcpStream, state: &Arc<ServerState>) {
    // Arm the socket deadlines before touching the stream: a client that
    // trickles bytes or never drains its receive buffer costs one thread
    // for at most `io_timeout`, not forever.
    if let Some(deadline) = state.io_timeout {
        let _ = stream.set_read_timeout(Some(deadline));
        let _ = stream.set_write_timeout(Some(deadline));
    }
    let request = match http::read_request(&mut stream, state.max_body_bytes) {
        Ok(r) => r,
        Err(e) => {
            respond_error(&mut stream, e.status(), &e.message());
            return;
        }
    };
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    let (status, body) = match (request.method.as_str(), segments.as_slice()) {
        ("POST", ["graphs"]) => post_graph(state, &request),
        ("POST", ["jobs"]) => post_job(state, &request),
        ("GET", ["jobs", id]) => get_job(state, id),
        ("POST", ["jobs", id, "cancel"]) => cancel_job(state, id),
        ("GET", ["healthz"]) => healthz_json(state),
        ("GET", ["stats"]) => (200, stats_json(state)),
        ("POST", ["shutdown"]) => {
            state.begin_shutdown();
            (200, Json::Obj(vec![("status".into(), Json::Str("shutting down".into()))]))
        }
        (_, ["graphs" | "jobs" | "stats" | "healthz" | "shutdown", ..]) => {
            (405, error_json("method not allowed for this endpoint"))
        }
        _ => (404, error_json(&format!("no such endpoint {:?}", request.path))),
    };
    let retry_after;
    let headers: &[(&str, String)] = if status == 429 {
        retry_after = [("Retry-After", state.retry_after_secs().to_string())];
        &retry_after
    } else {
        &[]
    };
    http::write_response(
        &mut stream,
        status,
        "application/json",
        headers,
        body.to_string_compact().as_bytes(),
    );
}

fn respond_error(stream: &mut TcpStream, status: u16, message: &str) {
    http::write_response(
        stream,
        status,
        "application/json",
        &[],
        error_json(message).to_string_compact().as_bytes(),
    );
}

fn error_json(message: &str) -> Json {
    Json::Obj(vec![("error".to_string(), Json::Str(message.to_string()))])
}

fn post_graph(state: &Arc<ServerState>, request: &http::Request) -> (u16, Json) {
    let text = match request.body_utf8() {
        Ok(t) => t,
        Err(e) => return (400, error_json(&e)),
    };
    let parsed = match graph_io::parse_edge_list(text) {
        Ok(p) => p,
        Err(e) => return (400, error_json(&format!("bad edge list: {e}"))),
    };
    let (nodes, edges) = (parsed.graph.node_count(), parsed.graph.edge_count());
    let (id, new) = state.graphs.insert(parsed.graph);
    (
        200,
        Json::Obj(vec![
            ("id".to_string(), Json::Str(id)),
            ("nodes".to_string(), Json::Num(nodes as f64)),
            ("edges".to_string(), Json::Num(edges as f64)),
            ("new".to_string(), Json::Bool(new)),
        ]),
    )
}

fn post_job(state: &Arc<ServerState>, request: &http::Request) -> (u16, Json) {
    let body = match request
        .body_utf8()
        .and_then(|t| graphalign_json::from_str(t).map_err(|e| format!("bad JSON body: {e:?}")))
    {
        Ok(b) => b,
        Err(e) => return (400, error_json(&e)),
    };
    let mut job_request = match jobs::parse_request(&body, state.default_timeout) {
        Ok(r) => r,
        Err(e) => return (400, error_json(&e)),
    };
    if let Err(e) = jobs::validate(state, &mut job_request) {
        return (400, error_json(&e));
    }

    // Admission control. Both checks and the inflight reservation happen
    // before the job becomes visible, so a refused submission leaves no
    // trace beyond the counter.
    let queued = state.jobs.count(JobStatus::Queued);
    if queued >= state.max_queued {
        state.counters.rejected_429.fetch_add(1, Ordering::Relaxed);
        return (
            429,
            error_json(&format!(
                "job queue is full ({queued}/{} queued); retry later",
                state.max_queued
            )),
        );
    }
    let est_bytes = jobs::estimate_bytes(state, &job_request);
    let inflight = state.inflight_bytes.load(Ordering::Relaxed);
    if inflight.saturating_add(est_bytes) > state.max_inflight_bytes {
        state.counters.rejected_429.fetch_add(1, Ordering::Relaxed);
        return (
            429,
            error_json(&format!(
                "in-flight working set is full ({inflight} + {est_bytes} > {} bytes); retry later",
                state.max_inflight_bytes
            )),
        );
    }
    state.inflight_bytes.fetch_add(est_bytes, Ordering::Relaxed);

    let id = state.jobs.create(job_request, est_bytes);
    let sender = state.sender.lock().expect("sender lock");
    match sender.as_ref() {
        Some(tx) if tx.send(id).is_ok() => (
            200,
            Json::Obj(vec![
                ("job".to_string(), Json::Num(id as f64)),
                ("status".to_string(), Json::Str("queued".to_string())),
            ]),
        ),
        _ => {
            state.inflight_bytes.fetch_sub(est_bytes, Ordering::Relaxed);
            (503, error_json("server is shutting down"))
        }
    }
}

fn get_job(state: &Arc<ServerState>, id: &str) -> (u16, Json) {
    let Ok(id) = id.parse::<usize>() else {
        return (400, error_json("job ids are integers"));
    };
    match state.jobs.poll_json(id) {
        Some(body) => (200, body),
        None => (404, error_json(&format!("no job {id}"))),
    }
}

fn cancel_job(state: &Arc<ServerState>, id: &str) -> (u16, Json) {
    let Ok(id) = id.parse::<usize>() else {
        return (400, error_json("job ids are integers"));
    };
    match state.jobs.request_cancel(id) {
        Some(_) => (
            200,
            Json::Obj(vec![
                ("job".to_string(), Json::Num(id as f64)),
                ("status".to_string(), Json::Str("cancel requested".to_string())),
            ]),
        ),
        None => (404, error_json(&format!("no job {id}"))),
    }
}

/// The `GET /healthz` readiness report: `200` when every worker is alive
/// and the persisted cache has no outstanding integrity debt, `503`
/// otherwise (same body either way, so probes can log the reasons).
fn healthz_json(state: &Arc<ServerState>) -> (u16, Json) {
    let workers_alive = state.workers_alive.load(Ordering::SeqCst);
    let cache_ok = state.cache.integrity_ok();
    let shutting_down = state.shutdown.load(Ordering::SeqCst);
    let mut reasons = Vec::new();
    if workers_alive < state.workers {
        reasons.push(format!("{workers_alive}/{} workers alive", state.workers));
    }
    if !cache_ok {
        reasons.push("persisted cache has quarantined entries awaiting recompute".to_string());
    }
    if shutting_down {
        reasons.push("shutting down".to_string());
    }
    let ready = reasons.is_empty();
    let body = Json::Obj(vec![
        ("status".to_string(), Json::Str(if ready { "ready" } else { "degraded" }.to_string())),
        ("reasons".to_string(), Json::Arr(reasons.into_iter().map(Json::Str).collect())),
        ("queue_depth".to_string(), Json::Num(state.jobs.count(JobStatus::Queued) as f64)),
        (
            "inflight_bytes".to_string(),
            Json::Num(state.inflight_bytes.load(Ordering::Relaxed) as f64),
        ),
        ("workers_alive".to_string(), Json::Num(workers_alive as f64)),
        ("workers".to_string(), Json::Num(state.workers as f64)),
        ("cache_integrity_ok".to_string(), Json::Bool(cache_ok)),
        (
            "cache_pending_integrity".to_string(),
            Json::Num(state.cache.stats().pending_integrity as f64),
        ),
    ]);
    (if ready { 200 } else { 503 }, body)
}

fn stats_json(state: &Arc<ServerState>) -> Json {
    let CacheStats {
        entries,
        bytes,
        hits,
        misses,
        evictions,
        disk_loads,
        quarantined,
        pending_integrity,
        io_errors,
    } = state.cache.stats();
    Json::Obj(vec![
        (
            "cache".to_string(),
            Json::Obj(vec![
                ("entries".to_string(), Json::Num(entries as f64)),
                ("bytes".to_string(), Json::Num(bytes as f64)),
                ("hits".to_string(), Json::Num(hits as f64)),
                ("misses".to_string(), Json::Num(misses as f64)),
                ("evictions".to_string(), Json::Num(evictions as f64)),
                ("disk_loads".to_string(), Json::Num(disk_loads as f64)),
                ("quarantined".to_string(), Json::Num(quarantined as f64)),
                ("pending_integrity".to_string(), Json::Num(pending_integrity as f64)),
                ("io_errors".to_string(), Json::Num(io_errors as f64)),
            ]),
        ),
        (
            "jobs".to_string(),
            Json::Obj(vec![
                ("queued".to_string(), Json::Num(state.jobs.count(JobStatus::Queued) as f64)),
                ("running".to_string(), Json::Num(state.jobs.count(JobStatus::Running) as f64)),
                ("done".to_string(), Json::Num(state.jobs.count(JobStatus::Done) as f64)),
                ("error".to_string(), Json::Num(state.jobs.count(JobStatus::Error) as f64)),
                ("timeout".to_string(), Json::Num(state.jobs.count(JobStatus::TimedOut) as f64)),
                ("cancelled".to_string(), Json::Num(state.jobs.count(JobStatus::Cancelled) as f64)),
            ]),
        ),
        (
            "resilience".to_string(),
            Json::Obj(vec![
                (
                    "retries".to_string(),
                    Json::Num(state.counters.retries.load(Ordering::Relaxed) as f64),
                ),
                (
                    "panics_contained".to_string(),
                    Json::Num(state.counters.panics_contained.load(Ordering::Relaxed) as f64),
                ),
                (
                    "rejected_429".to_string(),
                    Json::Num(state.counters.rejected_429.load(Ordering::Relaxed) as f64),
                ),
                (
                    "inflight_bytes".to_string(),
                    Json::Num(state.inflight_bytes.load(Ordering::Relaxed) as f64),
                ),
                (
                    "workers_alive".to_string(),
                    Json::Num(state.workers_alive.load(Ordering::SeqCst) as f64),
                ),
            ]),
        ),
        ("graphs".to_string(), Json::Num(state.graphs.len() as f64)),
        ("workers".to_string(), Json::Num(state.workers as f64)),
    ])
}
