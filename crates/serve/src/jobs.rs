//! The job table and per-job execution path of the serving layer.
//!
//! A job is one alignment query: a registered graph pair, an algorithm, an
//! assignment method, and an optional timeout. Jobs are executed on the
//! server's bounded worker pool; each execution installs its own telemetry
//! sink and cooperative budget (the PR-2 deadline machinery), consults the
//! keyed similarity cache, and records the full [`CellTelemetry`] block —
//! including the `cache_hits`/`cache_misses`/`cache_bytes` counters — in
//! the job's result. Results are bit-identical between cold and warm runs
//! and across worker-thread counts, per the workspace determinism contract.
//!
//! # Failure isolation
//!
//! Every attempt runs under `catch_unwind` — the same isolation the
//! experiment harness applies per repetition — so a panicking algorithm
//! produces a classified job failure, never a dead worker thread. Failures
//! carry the harness's [`CellError`] taxonomy in the `error_class` field:
//! `panic`, `timeout`, `numeric`, `infeasible`. Numeric failures retry with
//! exponential backoff up to the server's `job_retries` bound; retry
//! attempts bypass the similarity cache so a fresh computation (not a
//! possibly-poisoned cached value) gets the final word. Panics, timeouts,
//! cancellations, and bad instances never retry.

use crate::cache::CacheKey;
use crate::ServerState;
use graphalign::AlignError;
use graphalign_assignment::AssignmentMethod;
use graphalign_bench::harness::CellError;
use graphalign_bench::telemetry::CellTelemetry;
use graphalign_json::{Json, ToJson};
use graphalign_par::budget::BudgetState;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A submitted alignment query.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Registered source graph id (content-digest hex).
    pub source: String,
    /// Registered target graph id.
    pub target: String,
    /// Canonical algorithm name (registry spelling).
    pub algorithm: String,
    /// Assignment method.
    pub method: AssignmentMethod,
    /// Per-request deadline; `None` means the server default (which may
    /// itself be "no deadline").
    pub timeout: Option<Duration>,
}

/// Lifecycle of a job, reported verbatim in the `status` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished with a mapping.
    Done,
    /// Failed (panic, numerical failure, bad instance).
    Error,
    /// The per-request deadline expired mid-run.
    TimedOut,
    /// Cancelled via `POST /jobs/<id>/cancel` (or server shutdown).
    Cancelled,
}

impl JobStatus {
    fn as_str(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Error => "error",
            JobStatus::TimedOut => "timeout",
            JobStatus::Cancelled => "cancelled",
        }
    }
}

/// One job's full state.
struct Job {
    request: JobRequest,
    status: JobStatus,
    mapping: Option<Vec<usize>>,
    error: Option<String>,
    /// [`CellError`] taxonomy string when `error` is set.
    error_class: Option<&'static str>,
    /// Attempts performed (1 for a clean run; >1 after numeric retries).
    attempts: u32,
    telemetry: Option<Json>,
    /// Set while running so the cancel endpoint can reach the worker's
    /// budget from a connection-handler thread.
    budget: Option<Arc<BudgetState>>,
    cancel_requested: bool,
    /// Working-set estimate reserved against the admission budget.
    est_bytes: u64,
    /// Submission time; terminal-state latency feeds `Retry-After`.
    enqueued: Instant,
}

/// Thread-safe table of all jobs this server instance has accepted.
/// Job ids are dense indices in submission order.
#[derive(Default)]
pub struct JobTable {
    jobs: Mutex<Vec<Job>>,
}

impl JobTable {
    /// Registers a new queued job, returning its id. `est_bytes` is the
    /// working-set estimate already reserved by admission control; it is
    /// returned to the budget when the job reaches a terminal state.
    pub fn create(&self, request: JobRequest, est_bytes: u64) -> usize {
        let mut jobs = self.jobs.lock().expect("job table lock");
        jobs.push(Job {
            request,
            status: JobStatus::Queued,
            mapping: None,
            error: None,
            error_class: None,
            attempts: 0,
            telemetry: None,
            budget: None,
            cancel_requested: false,
            est_bytes,
            enqueued: Instant::now(),
        });
        jobs.len() - 1
    }

    /// Number of jobs whose status is `status`.
    pub fn count(&self, status: JobStatus) -> usize {
        self.jobs.lock().expect("job table lock").iter().filter(|j| j.status == status).count()
    }

    /// The poll response for `GET /jobs/<id>`, or `None` for unknown ids.
    pub fn poll_json(&self, id: usize) -> Option<Json> {
        let jobs = self.jobs.lock().expect("job table lock");
        let job = jobs.get(id)?;
        let mut members = vec![
            ("job".to_string(), Json::Num(id as f64)),
            ("status".to_string(), Json::Str(job.status.as_str().to_string())),
            ("source".to_string(), Json::Str(job.request.source.clone())),
            ("target".to_string(), Json::Str(job.request.target.clone())),
            ("algorithm".to_string(), Json::Str(job.request.algorithm.clone())),
            ("assignment".to_string(), Json::Str(job.request.method.label().to_string())),
        ];
        if job.attempts > 0 {
            members.push(("attempts".to_string(), Json::Num(job.attempts as f64)));
        }
        if let Some(mapping) = &job.mapping {
            members.push((
                "mapping".to_string(),
                Json::Arr(mapping.iter().map(|&v| Json::Num(v as f64)).collect()),
            ));
        }
        if let Some(err) = &job.error {
            members.push(("error".to_string(), Json::Str(err.clone())));
        }
        if let Some(class) = job.error_class {
            members.push(("error_class".to_string(), Json::Str(class.to_string())));
        }
        if let Some(t) = &job.telemetry {
            members.push(("telemetry".to_string(), t.clone()));
        }
        Some(Json::Obj(members))
    }

    /// Requests cancellation: flags the job and trips its budget if a
    /// worker is already running it. Returns the job's current status, or
    /// `None` for unknown ids.
    pub fn request_cancel(&self, id: usize) -> Option<JobStatus> {
        let mut jobs = self.jobs.lock().expect("job table lock");
        let job = jobs.get_mut(id)?;
        job.cancel_requested = true;
        if let Some(b) = &job.budget {
            b.cancel();
        }
        Some(job.status)
    }

    /// Flags every unfinished job for cancellation (server shutdown).
    pub fn cancel_all(&self) {
        let mut jobs = self.jobs.lock().expect("job table lock");
        for job in jobs.iter_mut() {
            if matches!(job.status, JobStatus::Queued | JobStatus::Running) {
                job.cancel_requested = true;
                if let Some(b) = &job.budget {
                    b.cancel();
                }
            }
        }
    }

    fn with_job<R>(&self, id: usize, f: impl FnOnce(&mut Job) -> R) -> R {
        let mut jobs = self.jobs.lock().expect("job table lock");
        f(jobs.get_mut(id).expect("job id from the channel is valid"))
    }
}

/// Estimated working-set bytes of a validated job: the dense similarity
/// matrix (`|V_s| × |V_t| × 8`) dominates every algorithm's footprint, so
/// it is the admission-control unit. Unknown graphs (validated away before
/// this is called) count as zero.
pub fn estimate_bytes(state: &ServerState, request: &JobRequest) -> u64 {
    match (state.graphs.get(&request.source), state.graphs.get(&request.target)) {
        (Some(s), Some(t)) => (s.node_count() as u64) * (t.node_count() as u64) * 8,
        _ => 0,
    }
}

/// How one attempt ended, before retry policy is applied.
enum AttemptOutcome {
    Mapping(Vec<usize>),
    /// A classified failure: taxonomy class + human-readable message.
    Failed(CellError, String),
}

/// Executes job `id` on the calling worker thread: cache lookup, similarity
/// computation on miss, assignment, telemetry capture, retry policy, result
/// recording. Always returns the job's admission reservation and records
/// its queue-to-terminal latency, whatever the outcome.
pub fn execute(state: &ServerState, id: usize) {
    run(state, id);
    let (est_bytes, latency) =
        state.jobs.with_job(id, |job| (job.est_bytes, job.enqueued.elapsed()));
    state.finish_job(est_bytes, latency);
}

fn run(state: &ServerState, id: usize) {
    let (request, cancelled) = state.jobs.with_job(id, |job| {
        if job.cancel_requested {
            job.status = JobStatus::Cancelled;
            (job.request.clone(), true)
        } else {
            job.status = JobStatus::Running;
            (job.request.clone(), false)
        }
    });
    if cancelled {
        return;
    }
    let Some((source, target)) = state
        .graphs
        .get(&request.source)
        .and_then(|s| state.graphs.get(&request.target).map(|t| (s, t)))
    else {
        // Graphs were validated at submission; reaching this means the id
        // scheme broke, which we surface rather than panic the worker.
        state.jobs.with_job(id, |job| {
            job.status = JobStatus::Error;
            job.error = Some("registered graph disappeared".to_string());
            job.error_class = Some(CellError::Infeasible.as_str());
        });
        return;
    };
    if !graphalign::registry()
        .into_iter()
        .any(|a| a.name().eq_ignore_ascii_case(&request.algorithm))
    {
        state.jobs.with_job(id, |job| {
            job.status = JobStatus::Error;
            job.error = Some(format!("unknown algorithm {:?}", request.algorithm));
            job.error_class = Some(CellError::Infeasible.as_str());
        });
        return;
    }

    let max_attempts = 1 + state.job_retries();
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let (outcome, telemetry) = attempt_once(state, id, &request, &source, &target, attempt);
        state.jobs.with_job(id, |job| {
            job.attempts = attempt;
            job.telemetry = Some(telemetry.clone());
        });
        match outcome {
            AttemptOutcome::Mapping(mapping) => {
                state.jobs.with_job(id, |job| {
                    job.status = JobStatus::Done;
                    job.mapping = Some(mapping);
                    job.error = None;
                    job.error_class = None;
                });
                return;
            }
            AttemptOutcome::Failed(class, message) => {
                let cancel_requested = state.jobs.with_job(id, |job| job.cancel_requested);
                let retryable =
                    class == CellError::Numeric && attempt < max_attempts && !cancel_requested;
                if retryable {
                    // Exponential backoff before the fresh (cache-bypassing)
                    // attempt: 10 ms, 20 ms, 40 ms, ... capped at 200 ms so
                    // a doomed job still fails promptly.
                    state.counters.retries.fetch_add(1, Ordering::Relaxed);
                    let backoff_ms = (10u64 << (attempt - 1)).min(200);
                    std::thread::sleep(Duration::from_millis(backoff_ms));
                    continue;
                }
                state.jobs.with_job(id, |job| {
                    job.status = match class {
                        CellError::Timeout if job.cancel_requested => JobStatus::Cancelled,
                        CellError::Timeout => JobStatus::TimedOut,
                        _ => JobStatus::Error,
                    };
                    job.error = Some(message);
                    job.error_class = Some(class.as_str());
                });
                return;
            }
        }
    }
}

/// One isolated attempt: telemetry sink + cooperative budget + fault site +
/// cache consultation + similarity + assignment, all under `catch_unwind`.
/// Attempts after the first bypass the cache read (fresh computation wins).
fn attempt_once(
    state: &ServerState,
    id: usize,
    request: &JobRequest,
    source: &Arc<graphalign_graph::Graph>,
    target: &Arc<graphalign_graph::Graph>,
    attempt: u32,
) -> (AttemptOutcome, Json) {
    // Resolve the aligner inside the attempt so the `dyn Aligner` borrow
    // never crosses the unwind boundary.
    let aligner = graphalign::registry()
        .into_iter()
        .find(|a| a.name().eq_ignore_ascii_case(&request.algorithm))
        .expect("algorithm validated at submission");

    // Per-attempt telemetry sink and cooperative budget. The budget is
    // armed with the request deadline (or cancel-only when none), and
    // published in the table so `POST /jobs/<id>/cancel` can trip it
    // cross-thread. The guards live *outside* catch_unwind: a panic inside
    // still restores the previous sink/budget and the telemetry drains.
    let _telemetry = graphalign_par::telemetry::install(false);
    let _budget = graphalign_par::budget::install(request.timeout);
    state.jobs.with_job(id, |job| job.budget = graphalign_par::budget::current());

    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // The serve-layer chaos site: a panic here exercises worker
        // isolation, a stall the cooperative deadline, and a simulated
        // numerical failure the retry-with-backoff policy.
        let site = format!("serve:worker:{}", aligner.name());
        graphalign_par::fault::maybe_inject(&site);
        if graphalign_par::fault::active(&site) == Some(graphalign_par::fault::FaultKind::Numeric) {
            return Err(AlignError::Numerical(graphalign_linalg::LinalgError::NoConvergence {
                routine: "injected-fault",
                iterations: 0,
            }));
        }

        let variant =
            if request.method == AssignmentMethod::Auction { "auction" } else { "generic" };
        let key = CacheKey {
            source: source.content_digest(),
            target: target.content_digest(),
            algorithm: aligner.name().to_string(),
            params: "default".to_string(),
            variant,
        };
        let cached = if attempt == 1 { state.cache.get(&key) } else { None };
        let sim = match cached {
            Some((sim, bytes)) => {
                // The warm path: the embedding/similarity phase is skipped
                // entirely; the response telemetry proves it (cache_hits =
                // 1, no "similarity" phase span).
                graphalign_par::telemetry::count_cache_hit(bytes);
                Ok(sim)
            }
            None => {
                state.cache.note_miss();
                graphalign_par::telemetry::count_cache_miss();
                graphalign::precompute_similarity(&*aligner, source, target, request.method).map(
                    |sim| {
                        let sim = Arc::new(sim);
                        state.cache.insert(&key, Arc::clone(&sim));
                        sim
                    },
                )
            }
        };
        sim.map(|sim| graphalign::assign_precomputed(&sim, request.method))
    }));
    state.jobs.with_job(id, |job| job.budget = None);
    let rep = graphalign_par::telemetry::drain();
    let telemetry = CellTelemetry::aggregate(&[rep]).to_json();

    let outcome = match caught {
        Ok(Ok(mapping)) => AttemptOutcome::Mapping(mapping),
        Ok(Err(e)) => AttemptOutcome::Failed(classify(&e), e.to_string()),
        Err(payload) => {
            state.counters.panics_contained.fetch_add(1, Ordering::Relaxed);
            AttemptOutcome::Failed(
                CellError::Panic,
                format!(
                    "{} panicked: {}",
                    aligner.name(),
                    graphalign_par::panic_message(payload.as_ref())
                ),
            )
        }
    };
    (outcome, telemetry)
}

/// Maps an [`AlignError`] onto the harness failure taxonomy — the same
/// mapping `RepFailure::from_align_error` applies in the experiment
/// harness, so serve responses and sweep result JSON agree on classes.
fn classify(e: &AlignError) -> CellError {
    match e {
        AlignError::Interrupted { .. } => CellError::Timeout,
        AlignError::BadInstance(_) => CellError::Infeasible,
        AlignError::Numerical(_) => CellError::Numeric,
    }
}

/// Parses the `POST /jobs` body. Validation errors become 400 responses.
pub fn parse_request(body: &Json, default_timeout: Option<Duration>) -> Result<JobRequest, String> {
    let field = |key: &str| {
        body.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("job request needs a string {key:?} field"))
    };
    let timeout = match body.get("timeout") {
        None | Some(Json::Null) => default_timeout,
        Some(v) => {
            let secs = v.as_f64().ok_or("timeout must be a number of seconds")?;
            if !secs.is_finite() || secs <= 0.0 {
                return Err("timeout must be a positive number of seconds".to_string());
            }
            Some(Duration::from_secs_f64(secs))
        }
    };
    Ok(JobRequest {
        source: field("source")?,
        target: field("target")?,
        algorithm: field("algorithm")?,
        method: AssignmentMethod::parse_label(
            body.get("assignment").and_then(Json::as_str).unwrap_or("jv"),
        )?,
        timeout,
    })
}

/// Validates a parsed request against the server's registries, resolving
/// the algorithm to its canonical registry spelling.
pub fn validate(state: &ServerState, request: &mut JobRequest) -> Result<(), String> {
    if state.graphs.get(&request.source).is_none() {
        return Err(format!("unknown source graph {:?}; POST /graphs first", request.source));
    }
    if state.graphs.get(&request.target).is_none() {
        return Err(format!("unknown target graph {:?}; POST /graphs first", request.target));
    }
    match graphalign::registry()
        .into_iter()
        .find(|a| a.name().eq_ignore_ascii_case(&request.algorithm))
    {
        Some(a) => {
            request.algorithm = a.name().to_string();
            Ok(())
        }
        None => {
            let names: Vec<&str> = graphalign::registry().iter().map(|a| a.name()).collect();
            Err(format!(
                "unknown algorithm {:?}; available: {}",
                request.algorithm,
                names.join(", ")
            ))
        }
    }
}
