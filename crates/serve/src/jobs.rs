//! The job table and per-job execution path of the serving layer.
//!
//! A job is one alignment query: a registered graph pair, an algorithm, an
//! assignment method, and an optional timeout. Jobs are executed on the
//! server's bounded worker pool; each execution installs its own telemetry
//! sink and cooperative budget (the PR-2 deadline machinery), consults the
//! keyed similarity cache, and records the full [`CellTelemetry`] block —
//! including the `cache_hits`/`cache_misses`/`cache_bytes` counters — in
//! the job's result. Results are bit-identical between cold and warm runs
//! and across worker-thread counts, per the workspace determinism contract.

use crate::cache::CacheKey;
use crate::ServerState;
use graphalign_assignment::AssignmentMethod;
use graphalign_bench::telemetry::CellTelemetry;
use graphalign_json::{Json, ToJson};
use graphalign_par::budget::BudgetState;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A submitted alignment query.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Registered source graph id (content-digest hex).
    pub source: String,
    /// Registered target graph id.
    pub target: String,
    /// Canonical algorithm name (registry spelling).
    pub algorithm: String,
    /// Assignment method.
    pub method: AssignmentMethod,
    /// Per-request deadline; `None` means the server default (which may
    /// itself be "no deadline").
    pub timeout: Option<Duration>,
}

/// Lifecycle of a job, reported verbatim in the `status` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished with a mapping.
    Done,
    /// Failed (bad instance, numerical failure).
    Error,
    /// The per-request deadline expired mid-run.
    TimedOut,
    /// Cancelled via `POST /jobs/<id>/cancel` (or server shutdown).
    Cancelled,
}

impl JobStatus {
    fn as_str(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Error => "error",
            JobStatus::TimedOut => "timeout",
            JobStatus::Cancelled => "cancelled",
        }
    }
}

/// One job's full state.
struct Job {
    request: JobRequest,
    status: JobStatus,
    mapping: Option<Vec<usize>>,
    error: Option<String>,
    telemetry: Option<Json>,
    /// Set while running so the cancel endpoint can reach the worker's
    /// budget from a connection-handler thread.
    budget: Option<Arc<BudgetState>>,
    cancel_requested: bool,
}

/// Thread-safe table of all jobs this server instance has accepted.
/// Job ids are dense indices in submission order.
#[derive(Default)]
pub struct JobTable {
    jobs: Mutex<Vec<Job>>,
}

impl JobTable {
    /// Registers a new queued job, returning its id.
    pub fn create(&self, request: JobRequest) -> usize {
        let mut jobs = self.jobs.lock().expect("job table lock");
        jobs.push(Job {
            request,
            status: JobStatus::Queued,
            mapping: None,
            error: None,
            telemetry: None,
            budget: None,
            cancel_requested: false,
        });
        jobs.len() - 1
    }

    /// Number of jobs whose status is `status`.
    pub fn count(&self, status: JobStatus) -> usize {
        self.jobs.lock().expect("job table lock").iter().filter(|j| j.status == status).count()
    }

    /// The poll response for `GET /jobs/<id>`, or `None` for unknown ids.
    pub fn poll_json(&self, id: usize) -> Option<Json> {
        let jobs = self.jobs.lock().expect("job table lock");
        let job = jobs.get(id)?;
        let mut members = vec![
            ("job".to_string(), Json::Num(id as f64)),
            ("status".to_string(), Json::Str(job.status.as_str().to_string())),
            ("source".to_string(), Json::Str(job.request.source.clone())),
            ("target".to_string(), Json::Str(job.request.target.clone())),
            ("algorithm".to_string(), Json::Str(job.request.algorithm.clone())),
            ("assignment".to_string(), Json::Str(job.request.method.label().to_string())),
        ];
        if let Some(mapping) = &job.mapping {
            members.push((
                "mapping".to_string(),
                Json::Arr(mapping.iter().map(|&v| Json::Num(v as f64)).collect()),
            ));
        }
        if let Some(err) = &job.error {
            members.push(("error".to_string(), Json::Str(err.clone())));
        }
        if let Some(t) = &job.telemetry {
            members.push(("telemetry".to_string(), t.clone()));
        }
        Some(Json::Obj(members))
    }

    /// Requests cancellation: flags the job and trips its budget if a
    /// worker is already running it. Returns the job's current status, or
    /// `None` for unknown ids.
    pub fn request_cancel(&self, id: usize) -> Option<JobStatus> {
        let mut jobs = self.jobs.lock().expect("job table lock");
        let job = jobs.get_mut(id)?;
        job.cancel_requested = true;
        if let Some(b) = &job.budget {
            b.cancel();
        }
        Some(job.status)
    }

    /// Flags every unfinished job for cancellation (server shutdown).
    pub fn cancel_all(&self) {
        let mut jobs = self.jobs.lock().expect("job table lock");
        for job in jobs.iter_mut() {
            if matches!(job.status, JobStatus::Queued | JobStatus::Running) {
                job.cancel_requested = true;
                if let Some(b) = &job.budget {
                    b.cancel();
                }
            }
        }
    }

    fn with_job<R>(&self, id: usize, f: impl FnOnce(&mut Job) -> R) -> R {
        let mut jobs = self.jobs.lock().expect("job table lock");
        f(jobs.get_mut(id).expect("job id from the channel is valid"))
    }
}

/// Executes job `id` on the calling worker thread: cache lookup, similarity
/// computation on miss, assignment, telemetry capture, result recording.
pub fn execute(state: &ServerState, id: usize) {
    let (request, cancelled) = state.jobs.with_job(id, |job| {
        if job.cancel_requested {
            job.status = JobStatus::Cancelled;
            (job.request.clone(), true)
        } else {
            job.status = JobStatus::Running;
            (job.request.clone(), false)
        }
    });
    if cancelled {
        return;
    }
    let Some((source, target)) = state
        .graphs
        .get(&request.source)
        .and_then(|s| state.graphs.get(&request.target).map(|t| (s, t)))
    else {
        // Graphs were validated at submission; reaching this means the id
        // scheme broke, which we surface rather than panic the worker.
        state.jobs.with_job(id, |job| {
            job.status = JobStatus::Error;
            job.error = Some("registered graph disappeared".to_string());
        });
        return;
    };
    let Some(aligner) = graphalign::registry()
        .into_iter()
        .find(|a| a.name().eq_ignore_ascii_case(&request.algorithm))
    else {
        state.jobs.with_job(id, |job| {
            job.status = JobStatus::Error;
            job.error = Some(format!("unknown algorithm {:?}", request.algorithm));
        });
        return;
    };

    // Per-job telemetry sink and cooperative budget. The budget is armed
    // with the request deadline (or cancel-only when none), and published in
    // the table so `POST /jobs/<id>/cancel` can trip it cross-thread.
    let _telemetry = graphalign_par::telemetry::install(false);
    let _budget = graphalign_par::budget::install(request.timeout);
    state.jobs.with_job(id, |job| job.budget = graphalign_par::budget::current());

    let variant = if request.method == AssignmentMethod::Auction { "auction" } else { "generic" };
    let key = CacheKey {
        source: source.content_digest(),
        target: target.content_digest(),
        algorithm: aligner.name().to_string(),
        params: "default".to_string(),
        variant,
    };
    let sim = match state.cache.get(&key) {
        Some((sim, bytes)) => {
            // The warm path: the embedding/similarity phase is skipped
            // entirely; the response telemetry proves it (cache_hits = 1,
            // no "similarity" phase span).
            graphalign_par::telemetry::count_cache_hit(bytes);
            Ok(sim)
        }
        None => {
            state.cache.note_miss();
            graphalign_par::telemetry::count_cache_miss();
            graphalign::precompute_similarity(&*aligner, &source, &target, request.method).map(
                |sim| {
                    let sim = Arc::new(sim);
                    state.cache.insert(&key, Arc::clone(&sim));
                    sim
                },
            )
        }
    };
    let outcome = sim.map(|sim| graphalign::assign_precomputed(&sim, request.method));
    let rep = graphalign_par::telemetry::drain();
    let telemetry = CellTelemetry::aggregate(&[rep]).to_json();
    state.jobs.with_job(id, |job| {
        job.budget = None;
        job.telemetry = Some(telemetry);
        match outcome {
            Ok(mapping) => {
                job.status = JobStatus::Done;
                job.mapping = Some(mapping);
            }
            Err(e) => {
                job.status = if !e.is_interrupted() {
                    JobStatus::Error
                } else if job.cancel_requested {
                    JobStatus::Cancelled
                } else {
                    JobStatus::TimedOut
                };
                job.error = Some(e.to_string());
            }
        }
    });
}

/// Parses the `POST /jobs` body. Validation errors become 400 responses.
pub fn parse_request(body: &Json, default_timeout: Option<Duration>) -> Result<JobRequest, String> {
    let field = |key: &str| {
        body.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("job request needs a string {key:?} field"))
    };
    let timeout = match body.get("timeout") {
        None | Some(Json::Null) => default_timeout,
        Some(v) => {
            let secs = v.as_f64().ok_or("timeout must be a number of seconds")?;
            if !secs.is_finite() || secs <= 0.0 {
                return Err("timeout must be a positive number of seconds".to_string());
            }
            Some(Duration::from_secs_f64(secs))
        }
    };
    Ok(JobRequest {
        source: field("source")?,
        target: field("target")?,
        algorithm: field("algorithm")?,
        method: AssignmentMethod::parse_label(
            body.get("assignment").and_then(Json::as_str).unwrap_or("jv"),
        )?,
        timeout,
    })
}

/// Validates a parsed request against the server's registries, resolving
/// the algorithm to its canonical registry spelling.
pub fn validate(state: &ServerState, request: &mut JobRequest) -> Result<(), String> {
    if state.graphs.get(&request.source).is_none() {
        return Err(format!("unknown source graph {:?}; POST /graphs first", request.source));
    }
    if state.graphs.get(&request.target).is_none() {
        return Err(format!("unknown target graph {:?}; POST /graphs first", request.target));
    }
    match graphalign::registry()
        .into_iter()
        .find(|a| a.name().eq_ignore_ascii_case(&request.algorithm))
    {
        Some(a) => {
            request.algorithm = a.name().to_string();
            Ok(())
        }
        None => {
            let names: Vec<&str> = graphalign::registry().iter().map(|a| a.name()).collect();
            Err(format!(
                "unknown algorithm {:?}; available: {}",
                request.algorithm,
                names.join(", ")
            ))
        }
    }
}
