//! Dependency-free JSON support for the experiment harness.
//!
//! The build environment has no crates.io access, so rather than shimming
//! `serde`'s derive machinery the harness serializes through this small
//! crate: a [`Json`] value type with an order-preserving object
//! representation, a pretty printer, a strict parser (for
//! `compare_results`), the [`json!`] literal macro, and the
//! [`impl_to_json!`] macro that replaces `#[derive(Serialize)]` on the flat
//! result-row structs.
//!
//! Numbers are stored as `f64`, which is exact for every count the harness
//! emits (< 2^53) and matches how `compare_results` consumes them.

use std::collections::VecDeque;
use std::fmt::Write as _;

/// A JSON value. Object member order is preserved so emitted files are
/// stable and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers are exact up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member `key` of an object, `None` for other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and `\n` line endings.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    /// Serializes to a single line with no whitespace — the JSONL form the
    /// checkpoint journal appends, one value per line. Numbers use the same
    /// shortest-roundtrip formatting as the pretty printer, so a value
    /// parsed back from its compact form is bit-identical.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; emit null like serde_json's lossy mode.
        out.push_str("null");
    } else if n == 0.0 && n.is_sign_negative() {
        // The integer fast path would print "-0.0 as i64" = "0", silently
        // dropping the sign; "-0" parses back to negative zero, keeping the
        // similarity-cache round trip bit-exact.
        out.push_str("-0");
    } else if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into [`Json`]; the harness's replacement for `serde::Serialize`.
pub trait ToJson {
    /// Converts `self` to a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

macro_rules! impl_to_json_num {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
    )*};
}

impl_to_json_num!(f32, f64, i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

/// Pretty-prints any [`ToJson`] value.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_string_pretty()
}

/// Single-line-prints any [`ToJson`] value (JSONL form).
pub fn to_string_compact<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_string_compact()
}

/// Implements [`ToJson`] for a struct with the listed fields, emitting an
/// object whose keys are the field names in the listed order — the drop-in
/// replacement for `#[derive(Serialize)]` on flat result-row structs.
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Obj(vec![
                    $((stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field)),)+
                ])
            }
        }
    };
}

/// Builds a [`Json`] literal: `json!({ "k": expr, ... })`, `json!([a, b])`,
/// or a scalar. Values are converted through [`ToJson`].
#[macro_export]
macro_rules! json {
    (null) => { $crate::Json::Null };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Json::Obj(vec![
            $(($key.to_string(), $crate::json!($value)),)*
        ])
    };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Json::Arr(vec![$($crate::json!($item),)*])
    };
    ($value:expr) => { $crate::ToJson::to_json(&$value) };
}

/// A parse failure with byte position and message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset the error was detected at.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn from_str(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { at: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.unicode_escape()?;
                            out.push(code);
                            continue;
                        }
                        _ => return Err(self.err("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 scalar (input is valid UTF-8:
                    // it came from &str).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input is valid UTF-8"),
                    );
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        // self.pos is at the 'u'.
        let hex4 = |p: &mut Self| -> Result<u32, ParseError> {
            p.pos += 1; // past 'u'
            if p.pos + 4 > p.bytes.len() {
                return Err(p.err("truncated \\u escape"));
            }
            let s = std::str::from_utf8(&p.bytes[p.pos..p.pos + 4])
                .map_err(|_| p.err("bad \\u escape"))?;
            let v = u32::from_str_radix(s, 16).map_err(|_| p.err("bad \\u escape"))?;
            p.pos += 4;
            Ok(v)
        };
        let hi = hex4(self)?;
        if (0xD800..0xDC00).contains(&hi) {
            // Surrogate pair: expect \uXXXX low half.
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                if self.peek() == Some(b'u') {
                    let lo = hex4(self)?;
                    if (0xDC00..0xE000).contains(&lo) {
                        let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        return char::from_u32(c).ok_or_else(|| self.err("bad surrogate pair"));
                    }
                }
            }
            return Err(self.err("lone high surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("bad \\u escape"))
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| ParseError { at: start, message: format!("bad number '{text}'") })
    }
}

/// Breadth-first iterator over all values in a document (self included);
/// handy for tests and tooling.
pub fn walk(root: &Json) -> impl Iterator<Item = &Json> {
    let mut queue: VecDeque<&Json> = VecDeque::from([root]);
    std::iter::from_fn(move || {
        let next = queue.pop_front()?;
        match next {
            Json::Arr(items) => queue.extend(items.iter()),
            Json::Obj(members) => queue.extend(members.iter().map(|(_, v)| v)),
            _ => {}
        }
        Some(next)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negative_zero_round_trips_bit_exactly() {
        let text = Json::Num(-0.0).to_string_compact();
        assert_eq!(text, "-0");
        let back = from_str(&text).unwrap().as_f64().unwrap();
        assert_eq!(back.to_bits(), (-0.0f64).to_bits());
        // Positive zero keeps the plain integer form.
        assert_eq!(Json::Num(0.0).to_string_compact(), "0");
    }

    #[test]
    fn pretty_round_trip() {
        let doc = json!({
            "algo": "IsoRank",
            "acc": 0.75,
            "reps": 3usize,
            "skipped": false,
            "err": Json::Null,
            "tags": json!(["a", "b"]),
        });
        let text = doc.to_string_pretty();
        let back = from_str(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get("algo").and_then(Json::as_str), Some("IsoRank"));
        assert_eq!(back.get("acc").and_then(Json::as_f64), Some(0.75));
        assert_eq!(back.get("skipped").and_then(Json::as_bool), Some(false));
        assert_eq!(back.get("err"), Some(&Json::Null));
    }

    #[test]
    fn compact_is_one_line_and_round_trips() {
        let doc = json!({
            "algo": "IsoRank",
            "acc": 0.123456789012345,
            "msg": "line1\nline2 \"quoted\"",
            "tags": json!([1, Json::Null, true]),
        });
        let line = doc.to_string_compact();
        assert!(!line.contains('\n'), "compact output must be one line: {line}");
        assert!(!line.contains(": "), "no space after ':' in compact form");
        assert_eq!(from_str(&line).unwrap(), doc);
    }

    #[test]
    fn compact_numbers_round_trip_bit_exactly() {
        // f64 Display is shortest-roundtrip in Rust, so parse-back must
        // reproduce the exact bits — the property journal resume relies on.
        for bits in
            [0x3FB999999999999Au64, 0x3FF0000000000001, 0x7FEFFFFFFFFFFFFF, 0x0000000000000001]
        {
            let v = f64::from_bits(bits);
            let line = json!(v).to_string_compact();
            let back = from_str(&line).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), bits, "value {v:e}");
        }
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(json!(3usize).to_string_pretty(), "3");
        assert_eq!(json!(-7i64).to_string_pretty(), "-7");
        assert_eq!(json!(0.5f64).to_string_pretty(), "0.5");
    }

    #[test]
    fn struct_macro_serializes_fields_in_order() {
        struct Row {
            name: String,
            score: f64,
            n: usize,
        }
        impl_to_json!(Row { name, score, n });
        let row = Row { name: "x".into(), score: 1.5, n: 2 };
        let j = row.to_json();
        match &j {
            Json::Obj(members) => {
                let keys: Vec<&str> = members.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, ["name", "score", "n"]);
            }
            other => panic!("expected object, got {other:?}"),
        }
        let rows = vec![row];
        let text = to_string_pretty(&rows);
        assert_eq!(from_str(&text).unwrap(), Json::Arr(vec![j]));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("nul").is_err());
        assert!(from_str("1 2").is_err());
        assert!(from_str("\"unterminated").is_err());
    }

    #[test]
    fn parser_handles_escapes_and_unicode() {
        let v = from_str(r#""a\n\t\"\\ é 😀""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\ é 😀"));
    }

    #[test]
    fn parser_handles_numbers() {
        for (text, want) in
            [("0", 0.0), ("-12", -12.0), ("3.5", 3.5), ("1e3", 1000.0), ("-2.5E-2", -0.025)]
        {
            assert_eq!(from_str(text).unwrap().as_f64(), Some(want), "{text}");
        }
    }

    #[test]
    fn nonfinite_numbers_serialize_as_null() {
        assert_eq!(json!(f64::NAN).to_string_pretty(), "null");
        assert_eq!(json!(f64::INFINITY).to_string_pretty(), "null");
    }

    #[test]
    fn walk_visits_every_node() {
        let doc = json!({ "a": json!([1, 2]), "b": "s" });
        assert_eq!(walk(&doc).count(), 5);
    }
}
