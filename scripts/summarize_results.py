#!/usr/bin/env python3
"""Summarizes results/*.json into the compact per-experiment digests that
EXPERIMENTS.md quotes (best/worst algorithms per cell, noise slopes,
scalability orderings). Pure stdlib; reads whatever the figure binaries
wrote with --out."""
import json
import sys
from collections import defaultdict
from pathlib import Path

RESULTS = Path(sys.argv[1] if len(sys.argv) > 1 else "results")


def load(name):
    p = RESULTS / f"{name}.json"
    if not p.exists():
        return None
    return json.loads(p.read_text())


def fmt(v):
    return f"{100 * v:.0f}%"


def sweep_digest(name, measure="accuracy"):
    rows = load(name)
    if rows is None:
        print(f"[{name}] missing")
        return
    # Group by (workload, noise, level).
    cells = defaultdict(list)
    for r in rows:
        if r.get("skipped"):
            continue
        key = (r.get("workload", r.get("dataset", "?")), r.get("noise", "-"), r.get("level", r.get("variant", 0)))
        cells[key].append((r["algorithm"], r.get(measure, 0.0)))
    print(f"[{name}] {measure} leaders per cell:")
    for key in sorted(cells, key=str):
        ranked = sorted(cells[key], key=lambda x: -x[1])
        top = ", ".join(f"{a} {fmt(v)}" for a, v in ranked[:3])
        bottom = ranked[-1]
        print(f"  {key}: top3 [{top}]  worst {bottom[0]} {fmt(bottom[1])}")


def scalability_digest(name):
    rows = load(name)
    if rows is None:
        print(f"[{name}] missing")
        return
    by_algo = defaultdict(list)
    for r in rows:
        if r.get("skipped"):
            continue
        x = r.get("n", r.get("avg_degree", 0))
        by_algo[r["algorithm"]].append((x, r.get("seconds", r.get("model_bytes", 0))))
    print(f"[{name}] per-algorithm growth:")
    for algo, pts in sorted(by_algo.items()):
        pts.sort()
        series = "  ".join(f"{x}:{y:.3g}" for x, y in pts)
        print(f"  {algo}: {series}")


if __name__ == "__main__":
    for fig in ["fig2_er", "fig3_ba", "fig4_ws", "fig5_nw", "fig6_pl",
                "fig7_real_low_noise", "fig8_real_high_noise", "fig10_real_noise",
                "fig15_density", "fig16_size"]:
        sweep_digest(fig)
        print()
    sweep_digest("fig1_assignment")
    print()
    sweep_digest("fig9_time_accuracy")
    print()
    for fig in ["fig11_scal_nodes", "fig12_scal_degree", "fig13_mem_nodes", "fig14_mem_degree"]:
        scalability_digest(fig)
        print()
