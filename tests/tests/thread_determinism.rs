//! Bit-reproducibility across thread counts: the promise of the
//! `graphalign-par` execution layer, checked end-to-end through the real
//! pipeline (generate → perturb → similarity → assignment).
//!
//! The helpers in `graphalign-par` split work at chunk boundaries chosen
//! from the problem size alone and combine partial results in chunk order,
//! so alignments must be *bit-identical* whether the process uses one
//! worker thread or many — and identical again when the crate is built with
//! `--no-default-features` (no `parallel`), which runs the same chunk
//! schedule inline. This file is that contract's regression test.
//!
//! Everything lives in a single `#[test]` because `set_max_threads` is a
//! process-global override and the libtest harness runs tests in the same
//! binary concurrently.

use graphalign::registry;
use graphalign_assignment::AssignmentMethod;
use graphalign_gen as gen;
use graphalign_noise::{make_instance, NoiseConfig, NoiseModel};

#[test]
fn alignments_are_bit_identical_across_thread_counts() {
    // Large enough that the dense kernels exceed MIN_PAR_WORK and genuinely
    // fork on the multi-threaded pass (150² rows × ~150-flop rows ≫ 2¹⁷).
    let graph = gen::powerlaw_cluster(150, 5, 0.5, 19);
    let noise = NoiseConfig::new(NoiseModel::OneWay, 0.03);
    let instance = make_instance(&graph, &noise, 7);

    // The hot-path algorithms the parallel layer routes through chunked
    // kernels (dense products, Sinkhorn, power iterations, embeddings).
    let names = ["IsoRank", "LREA", "REGAL", "CONE", "GRASP"];

    let run_all = |threads: usize| -> Vec<(String, Vec<f64>, Vec<usize>)> {
        graphalign_par::set_max_threads(threads);
        // Without the `parallel` feature the layer is pinned to one inline
        // "thread" — the chunk schedule is identical either way.
        if cfg!(feature = "parallel") {
            assert_eq!(graphalign_par::max_threads(), threads);
        } else {
            assert_eq!(graphalign_par::max_threads(), 1);
        }
        registry()
            .iter()
            .filter(|a| names.contains(&a.name()))
            .map(|a| {
                let sim = a.similarity(&instance.source, &instance.target).unwrap();
                let alignment =
                    graphalign_assignment::assign(&sim, AssignmentMethod::JonkerVolgenant);
                (a.name().to_string(), sim.as_slice().to_vec(), alignment)
            })
            .collect()
    };

    let sequential = run_all(1);
    let parallel = run_all(8);
    graphalign_par::set_max_threads(0); // clear the override

    for ((name, sim1, a1), (_, sim8, a8)) in sequential.iter().zip(&parallel) {
        // Bit-exact similarity matrices: compare raw f64 bits, not within a
        // tolerance — reassociating a single reduction would fail this.
        let first_diff = sim1.iter().zip(sim8).position(|(x, y)| x.to_bits() != y.to_bits());
        assert_eq!(
            first_diff, None,
            "{name}: similarity differs between 1 and 8 threads at flat index {first_diff:?}"
        );
        assert_eq!(a1, a8, "{name}: alignment differs between 1 and 8 threads");
    }
}
