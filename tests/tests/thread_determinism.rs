//! Bit-reproducibility across thread counts: the promise of the
//! `graphalign-par` execution layer, checked end-to-end through the real
//! pipeline (generate → perturb → similarity → assignment) and directly
//! against the blocked/fused linear-algebra kernels.
//!
//! The helpers in `graphalign-par` split work at chunk boundaries chosen
//! from the problem size alone and combine partial results in chunk order,
//! and the blocked GEMM accumulates every output element in ascending
//! shared-index order regardless of the row-block schedule — so similarity
//! matrices, alignments, and telemetry operation counts must be
//! *bit-identical* whether the process uses one worker thread or many, and
//! identical again when the crate is built with `--no-default-features`
//! (no `parallel`), which runs the same chunk schedule inline. This file is
//! that contract's regression test.
//!
//! Everything lives in a single `#[test]` because `set_max_threads` is a
//! process-global override and the libtest harness runs tests in the same
//! binary concurrently.

use graphalign::registry;
use graphalign_assignment::AssignmentMethod;
use graphalign_gen as gen;
use graphalign_linalg::sinkhorn::{sinkhorn, uniform_marginal, SinkhornParams};
use graphalign_linalg::{CsrMatrix, DenseMatrix, Similarity, Workspace};
use graphalign_noise::{make_instance, NoiseConfig, NoiseModel};
use graphalign_par::telemetry;

/// The op counters that must not depend on the thread count.
type OpCounts = (u64, u64, u64, u64);

/// One algorithm's output: name, flattened similarity matrix, alignment.
type AlgoOutput = (String, Vec<f64>, Vec<usize>);

fn op_counts(t: &telemetry::RepTelemetry) -> OpCounts {
    (t.matmuls, t.sinkhorn_sweeps, t.allocs_saved, t.alloc_bytes_saved)
}

/// Flattens whichever representation the algorithm emitted into its raw
/// f64 payload, without densifying: factored similarities are compared by
/// their factor bits — a strictly stronger check than comparing the
/// materialized product, since the kernel closure is deterministic given
/// the factors.
fn flatten_sim(sim: &Similarity) -> Vec<f64> {
    match sim {
        Similarity::Dense(m) => m.as_slice().to_vec(),
        Similarity::LowRank(lr) => {
            let mut out = lr.ya().as_slice().to_vec();
            out.extend_from_slice(lr.yb().as_slice());
            if let Some(off) = lr.row_offsets() {
                out.extend_from_slice(off);
            }
            out
        }
        Similarity::Sparse(s) => {
            (0..s.rows()).flat_map(|i| s.row_values(i).iter().copied()).collect()
        }
    }
}

fn assert_bits_eq(name: &str, threads: usize, base: &[f64], other: &[f64]) {
    assert_eq!(base.len(), other.len(), "{name}: length differs at {threads} threads");
    let first_diff = base.iter().zip(other).position(|(x, y)| x.to_bits() != y.to_bits());
    assert_eq!(
        first_diff, None,
        "{name}: result differs between 1 and {threads} threads at flat index {first_diff:?}"
    );
}

#[test]
fn alignments_are_bit_identical_across_thread_counts() {
    // Large enough that the dense kernels exceed MIN_PAR_WORK and genuinely
    // fork on the multi-threaded pass (150² rows × ~150-flop rows ≫ 2¹⁷).
    let graph = gen::powerlaw_cluster(150, 5, 0.5, 19);
    let noise = NoiseConfig::new(NoiseModel::OneWay, 0.03);
    let instance = make_instance(&graph, &noise, 7);

    // The hot-path algorithms the parallel layer routes through chunked
    // kernels (dense products, Sinkhorn, power iterations, embeddings) —
    // all of them now on workspace-reuse inner loops.
    let names = ["IsoRank", "LREA", "REGAL", "CONE", "GRASP"];

    let run_all = |threads: usize| -> (Vec<AlgoOutput>, OpCounts) {
        graphalign_par::set_max_threads(threads);
        // Without the `parallel` feature the layer is pinned to one inline
        // "thread" — the chunk schedule is identical either way.
        if cfg!(feature = "parallel") {
            assert_eq!(graphalign_par::max_threads(), threads);
        } else {
            assert_eq!(graphalign_par::max_threads(), 1);
        }
        let _guard = telemetry::install(false);
        let results = registry()
            .iter()
            .filter(|a| names.contains(&a.name()))
            .map(|a| {
                let sim = a.similarity(&instance.source, &instance.target).unwrap();
                let alignment =
                    graphalign_assignment::assign(&sim, AssignmentMethod::JonkerVolgenant);
                (a.name().to_string(), flatten_sim(&sim), alignment)
            })
            .collect();
        (results, op_counts(&telemetry::drain()))
    };

    // Direct probe of the blocked GEMM family, the fused CSR kernel, and
    // the workspace-backed Sinkhorn loop at sizes that cross both the
    // packed-path threshold and MIN_PAR_WORK (200³ = 8M multiply-adds).
    let kernel_probe = |threads: usize| -> (Vec<Vec<f64>>, OpCounts) {
        graphalign_par::set_max_threads(threads);
        let _guard = telemetry::install(false);
        let a = DenseMatrix::from_fn(200, 200, |i, j| ((i * 31 + j * 7) as f64).sin());
        let b = DenseMatrix::from_fn(200, 200, |i, j| ((i * 13 + j * 3) as f64).cos());
        let mut sparse_src = a.clone();
        sparse_src.map_inplace(|v| if v.abs() < 0.8 { 0.0 } else { v });
        let s = CsrMatrix::from_dense(&sparse_src);

        let mut ws = Workspace::new();
        let mut prod = DenseMatrix::zeros(200, 200);
        a.matmul_into(&b, &mut prod, &mut ws);
        let mut prod2 = DenseMatrix::zeros(200, 200);
        // Second product through the warm workspace: exercises buffer reuse.
        a.matmul_into(&b, &mut prod2, &mut ws);
        let trm = a.tr_matmul(&b);
        let mtr = a.matmul_tr(&b);
        let fused = b.mul_csr_tr(&s);
        // The tiled sparse kernels added for the SpMM-scaling pass: the
        // counting-sort transpose-multiply, the scatter right-multiply, the
        // column-tiled dense·CSRᵀ product, and the form-selecting kernel
        // whose hoist/gather choice depends on the size, never the threads.
        let tr_tiled = s.tr_mul_dense(&a);
        let scatter = b.mul_csr(&s);
        let dense_tr = s.mul_dense_tr(&b);
        let mut auto_out = DenseMatrix::zeros(200, 200);
        b.mul_csr_tr_into_auto(&s, &mut auto_out, &mut ws);
        let cost = DenseMatrix::from_fn(64, 64, |i, j| ((i + j) % 17) as f64 / 17.0);
        let mu = uniform_marginal(64);
        let params = SinkhornParams { epsilon: 0.05, max_iter: 40, tol: 0.0 };
        let (plan, _) = sinkhorn(&cost, &mu, &mu, &params).unwrap();

        let ops = op_counts(&telemetry::drain());

        // Graphlet signatures come out of per-worker exact counters summed
        // in worker order; flatten them through f64 bits for the comparison
        // (u64 orbit counts of ESU-countable subgraphs fit f64 exactly
        // here). The *results* must be thread-invariant, but each worker
        // keeps its own ESU scratch whose first root allocates cold, so the
        // scratch-reuse telemetry legitimately depends on the worker count —
        // it is drained after the op-count snapshot and only asserted
        // nonzero.
        let gd =
            graphalign_graph::graphlets::graphlet_degrees(&gen::powerlaw_cluster(120, 6, 0.4, 23));
        let gd_flat: Vec<f64> =
            gd.counts.iter().flat_map(|c| c.iter().map(|&v| v as f64)).collect();
        assert!(telemetry::drain().allocs_saved > 0, "graphlet scratch reuse went uncounted");

        let outputs = vec![
            prod.as_slice().to_vec(),
            prod2.as_slice().to_vec(),
            trm.as_slice().to_vec(),
            mtr.as_slice().to_vec(),
            fused.as_slice().to_vec(),
            tr_tiled.as_slice().to_vec(),
            scatter.as_slice().to_vec(),
            dense_tr.as_slice().to_vec(),
            auto_out.as_slice().to_vec(),
            gd_flat,
            plan.as_slice().to_vec(),
        ];
        (outputs, ops)
    };

    // The first JV on a factored similarity charges the assignment layer's
    // thread-local densify pool with its initial allocation; run once
    // untimed so every measured pass below sees the same warm pool and
    // identical workspace-reuse counters.
    run_all(1);
    let (seq, seq_ops) = run_all(1);
    let (kseq, kseq_ops) = kernel_probe(1);
    for threads in [2, 8] {
        let (par, par_ops) = run_all(threads);
        for ((name, sim1, a1), (_, simn, an)) in seq.iter().zip(&par) {
            // Bit-exact similarity matrices: compare raw f64 bits, not
            // within a tolerance — reassociating a single reduction would
            // fail this.
            assert_bits_eq(name, threads, sim1, simn);
            assert_eq!(a1, an, "{name}: alignment differs between 1 and {threads} threads");
        }
        assert_eq!(seq_ops, par_ops, "telemetry op counts differ between 1 and {threads} threads");

        let (kpar, kpar_ops) = kernel_probe(threads);
        for (i, (k1, kn)) in kseq.iter().zip(&kpar).enumerate() {
            assert_bits_eq(&format!("kernel probe #{i}"), threads, k1, kn);
        }
        assert_eq!(
            kseq_ops, kpar_ops,
            "kernel-probe telemetry op counts differ between 1 and {threads} threads"
        );
    }
    graphalign_par::set_max_threads(0); // clear the override
}
