//! Regression probes for the Gromov-Wasserstein methods' paper-shape:
//! GWL must do well on power-law graphs (its strength per §6.3) while its
//! weakness on uniform-degree models is inherent; S-GWL must be competitive
//! across models.

use graphalign::gwl::Gwl;
use graphalign::sgwl::Sgwl;
use graphalign::Aligner;
use graphalign_assignment::AssignmentMethod;
use graphalign_metrics::accuracy;
use graphalign_noise::{make_instance, NoiseConfig, NoiseModel};

#[test]
fn gwl_strong_on_powerlaw() {
    let g = graphalign_gen::barabasi_albert(200, 5, 3);
    let inst = make_instance(&g, &NoiseConfig::new(NoiseModel::OneWay, 0.0), 1);
    let aligned = Gwl::default()
        .align_with(&inst.source, &inst.target, AssignmentMethod::JonkerVolgenant)
        .unwrap();
    let acc = accuracy(&aligned, &inst.ground_truth);
    println!("GWL BA accuracy: {acc}");
    assert!(acc > 0.5, "GWL on noiseless BA: {acc}");
}

#[test]
fn sgwl_beats_gwl_on_small_world() {
    // The §6.3 surprise: "Although approximating GWL, S-GWL is competitive"
    // — on uniform-degree models the approximation *beats* the exact method.
    let g = graphalign_gen::watts_strogatz(200, 10, 0.5, 11);
    let inst = make_instance(&g, &NoiseConfig::new(NoiseModel::OneWay, 0.0), 4);
    let s_acc = {
        let a = Sgwl::default()
            .align_with(&inst.source, &inst.target, AssignmentMethod::JonkerVolgenant)
            .unwrap();
        accuracy(&a, &inst.ground_truth)
    };
    let g_acc = {
        let a = Gwl::default()
            .align_with(&inst.source, &inst.target, AssignmentMethod::JonkerVolgenant)
            .unwrap();
        accuracy(&a, &inst.ground_truth)
    };
    println!("S-GWL {s_acc} vs GWL {g_acc} on WS");
    assert!(s_acc > g_acc, "S-GWL ({s_acc}) should beat GWL ({g_acc}) on WS");
}

#[test]
fn sgwl_competitive_on_small_world() {
    let g = graphalign_gen::watts_strogatz(300, 10, 0.5, 7);
    let inst = make_instance(&g, &NoiseConfig::new(NoiseModel::OneWay, 0.0), 2);
    let aligned = Sgwl::default()
        .align_with(&inst.source, &inst.target, AssignmentMethod::JonkerVolgenant)
        .unwrap();
    let acc = accuracy(&aligned, &inst.ground_truth);
    println!("S-GWL WS accuracy: {acc}");
    assert!(acc > 0.5, "S-GWL on noiseless WS: {acc}");
}
