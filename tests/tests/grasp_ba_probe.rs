//! Probe (kept as regression test): GRASP must be strong on noiseless
//! power-law graphs — "GRASP almost consistently returns the best alignment
//! on graphs with no noise" (§6.3).

use graphalign::grasp::Grasp;
use graphalign::Aligner;
use graphalign_assignment::AssignmentMethod;
use graphalign_metrics::accuracy;
use graphalign_noise::{make_instance, NoiseConfig, NoiseModel};

#[test]
fn grasp_ba_probe() {
    let g = graphalign_gen::barabasi_albert(300, 5, 2023 ^ 0x9e3779b97f4a7c15);
    let inst = make_instance(&g, &NoiseConfig::new(NoiseModel::OneWay, 0.0), 2023);
    let aligned = Grasp::default()
        .align_with(&inst.source, &inst.target, AssignmentMethod::JonkerVolgenant)
        .unwrap();
    let acc = accuracy(&aligned, &inst.ground_truth);
    println!("GRASP BA accuracy: {acc}");
    assert!(acc > 0.5, "GRASP on noiseless BA: {acc}");
}

#[test]
fn grasp_shape_across_models() {
    // GRASP should be decent across all models at zero noise (paper §6.3:
    // "almost consistently returns the best alignment on graphs with no
    // noise", modulo local automorphisms at this scale).
    let cases: Vec<(&str, graphalign_graph::Graph, f64)> = vec![
        ("WS", graphalign_gen::watts_strogatz(300, 10, 0.5, 3), 0.5),
        ("NW", graphalign_gen::newman_watts(300, 7, 0.5, 4), 0.6),
        ("PL", graphalign_gen::powerlaw_cluster(300, 5, 0.5, 5), 0.5),
    ];
    for (name, g, floor) in cases {
        let inst = make_instance(&g, &NoiseConfig::new(NoiseModel::OneWay, 0.0), 9);
        let aligned = Grasp::default()
            .align_with(&inst.source, &inst.target, AssignmentMethod::JonkerVolgenant)
            .unwrap();
        let acc = accuracy(&aligned, &inst.ground_truth);
        println!("GRASP {name} accuracy: {acc}");
        assert!(acc > floor, "GRASP on noiseless {name}: {acc}");
    }
}
