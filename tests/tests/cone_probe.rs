//! Temporary probe (kept as a regression test): CONE must align a noiseless
//! Watts-Strogatz instance well — the paper's headline claim ("CONE performs
//! well on all graph models").

use graphalign::cone::Cone;
use graphalign::Aligner;
use graphalign_assignment::AssignmentMethod;
use graphalign_metrics::accuracy;
use graphalign_noise::{make_instance, NoiseConfig, NoiseModel};

#[test]
fn cone_aligns_watts_strogatz() {
    let g = graphalign_gen::watts_strogatz(300, 10, 0.5, 2023);
    for (level, floor) in [(0.0, 0.8), (0.02, 0.5)] {
        let inst = make_instance(&g, &NoiseConfig::new(NoiseModel::OneWay, level), 1);
        let aligned = Cone::default()
            .align_with(&inst.source, &inst.target, AssignmentMethod::JonkerVolgenant)
            .unwrap();
        let acc = accuracy(&aligned, &inst.ground_truth);
        println!("CONE WS accuracy at {level}: {acc}");
        assert!(acc > floor, "CONE on WS at {level}: {acc}");
    }
}

#[test]
fn cone_aligns_erdos_renyi() {
    let g = graphalign_gen::erdos_renyi(300, 0.03, 5);
    let inst = make_instance(&g, &NoiseConfig::new(NoiseModel::OneWay, 0.0), 2);
    let aligned = Cone::default()
        .align_with(&inst.source, &inst.target, AssignmentMethod::JonkerVolgenant)
        .unwrap();
    let acc = accuracy(&aligned, &inst.ground_truth);
    println!("CONE ER accuracy: {acc}");
    assert!(acc > 0.8, "CONE on noiseless ER: {acc}");
}
