//! End-to-end contract of the solver-telemetry layer, driven through the
//! same harness paths the figure binaries use:
//!
//! * the `--trace` JSONL sidecar matches its golden schema: every line is a
//!   [`TraceRecord`] with the documented keys in the documented order, a
//!   stop reason from the taxonomy, finite residuals, and a stop reason
//!   consistent with its convergence flag;
//! * a forcibly tightened iteration cap surfaces as `converged: false` with
//!   stop `max_iter` in the cell's aggregated telemetry block — while the
//!   cell still yields its quality measures (truncation must be *reported*,
//!   never silently averaged away, and never fatal);
//! * the telemetry block (counters, iteration totals, stop-reason counts)
//!   is bit-identical across worker thread counts.
//!
//! The iteration-cap override and the thread-count override are process
//! globals, so these tests serialize on a mutex.

use graphalign_assignment::AssignmentMethod;
use graphalign_bench::figures::SweepSession;
use graphalign_bench::harness::{run_cell, run_cell_traced, RunPolicy};
use graphalign_bench::suite::{set_forced_max_iter, Algo};
use graphalign_bench::telemetry::TraceRecord;
use graphalign_bench::Config;
use graphalign_noise::{NoiseConfig, NoiseModel};
use graphalign_par::telemetry::StopReason;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Restores the forced iteration cap even when an assertion panics, so one
/// failing test cannot poison the rest of the (serialized) suite.
struct CapGuard;

impl Drop for CapGuard {
    fn drop(&mut self) {
        set_forced_max_iter(None);
    }
}

fn small_graph() -> graphalign_graph::Graph {
    graphalign_gen::powerlaw_cluster(60, 3, 0.5, 1)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ga-telemetry-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// The documented key order of a trace record — the golden schema the
/// `trace_lint` binary and any downstream tooling rely on.
const TRACE_KEYS: [&str; 12] = [
    "workload",
    "algorithm",
    "assignment",
    "noise",
    "level",
    "rep",
    "routine",
    "iterations",
    "residual",
    "converged",
    "stop",
    "residuals",
];

#[test]
fn trace_jsonl_matches_golden_schema() {
    let _guard = serial();
    graphalign_bench::fault::set_for_test(None);
    let dir = temp_dir("schema");
    let trace_path = dir.join("sweep.trace.jsonl");

    let cfg = Config { seed: 7, trace: Some(trace_path.clone()), ..Config::default() };
    let mut session = SweepSession::new(&cfg);
    let rows = session.quality_sweep("t", &small_graph(), true, &[NoiseModel::OneWay], &[0.02], 1);
    drop(session);
    assert_eq!(rows.len(), Algo::ALL.len());

    let text = std::fs::read_to_string(&trace_path).expect("trace sidecar written");
    let mut records = 0usize;
    for (idx, line) in text.lines().enumerate() {
        let value = graphalign_json::from_str(line)
            .unwrap_or_else(|e| panic!("trace line {}: bad JSON: {e}", idx + 1));

        // Key set *and* order are part of the schema: the sidecar is meant
        // to be diffable across runs and greppable with fixed offsets.
        let graphalign_json::Json::Obj(entries) = &value else {
            panic!("trace line {}: not a JSON object", idx + 1);
        };
        let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, TRACE_KEYS, "trace line {}: key schema drifted", idx + 1);

        let record = TraceRecord::from_json(&value)
            .unwrap_or_else(|| panic!("trace line {}: does not parse as a TraceRecord", idx + 1));
        records += 1;

        assert!(
            StopReason::parse(&record.stop).is_some(),
            "trace line {}: stop reason {:?} outside the taxonomy",
            idx + 1,
            record.stop
        );
        assert!(record.residual.is_finite(), "trace line {}: non-finite final residual", idx + 1);
        assert!(
            record.residuals.iter().all(|r| r.is_finite()),
            "trace line {}: non-finite residual in series",
            idx + 1
        );
        assert!(
            record.residuals.len() <= record.iterations,
            "trace line {}: {} residuals for {} iterations",
            idx + 1,
            record.residuals.len(),
            record.iterations
        );
        // Taxonomy consistency: tolerance implies converged, interruption
        // implies not converged.
        if record.stop == "tolerance" {
            assert!(record.converged, "trace line {}: tolerance but not converged", idx + 1);
        }
        if record.stop == "interrupted" {
            assert!(!record.converged, "trace line {}: interrupted yet converged", idx + 1);
        }
        assert_eq!(record.workload, "t");
        assert_eq!(record.noise, "One-Way");
        assert!(Algo::from_name(&record.algorithm).is_some());
    }
    assert!(records > 0, "a nine-algorithm sweep must trace at least one solver invocation");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn forced_truncation_reports_nonconvergence_with_measures() {
    let _guard = serial();
    graphalign_bench::fault::set_for_test(None);
    let _restore = CapGuard;
    set_forced_max_iter(Some(2));

    let base = small_graph();
    let noise = NoiseConfig::new(NoiseModel::OneWay, 0.02);
    let policy = RunPolicy::new(2, 7, true);

    // IsoRank's power iteration and CONE's Sinkhorn inner loop are the two
    // solvers the override caps; two iterations is far below what either
    // needs at the default tolerances.
    for algo in [Algo::IsoRank, Algo::Cone] {
        let cell = run_cell(algo, &base, true, &noise, AssignmentMethod::JonkerVolgenant, &policy);
        assert_eq!(cell.reps_ok, cell.reps, "{}: truncation must not fail the cell", algo.name());
        assert!(
            cell.accuracy.is_some() && cell.mnc.is_some() && cell.s3.is_some(),
            "{}: a truncated solver still yields measures",
            algo.name()
        );
        let telemetry =
            cell.telemetry.as_ref().unwrap_or_else(|| panic!("{}: telemetry block", algo.name()));
        assert!(
            !telemetry.converged,
            "{}: a 2-iteration cap must be reported as non-convergence",
            algo.name()
        );
        assert!(telemetry.nonconverged_runs > 0, "{}", algo.name());
        let max_iter_stops = telemetry
            .stop_reasons
            .iter()
            .find(|(reason, _)| reason == "max_iter")
            .map_or(0, |(_, count)| *count);
        assert!(
            max_iter_stops > 0,
            "{}: expected stop reason max_iter in {:?}",
            algo.name(),
            telemetry.stop_reasons
        );
    }

    // End-to-end through the figure-binary path: every figure binary is a
    // thin wrapper over `quality_sweep`, so a truncated IsoRank cell must
    // carry the non-convergence verdict in the rows (and JSON) it emits.
    let cfg = Config { seed: 7, ..Config::default() };
    let mut session = SweepSession::without_journal(&cfg);
    let rows = session.quality_sweep("t", &base, true, &[NoiseModel::OneWay], &[0.02], 1);
    let isorank = rows.iter().find(|r| r.cell.algorithm == "IsoRank").expect("IsoRank row");
    let telemetry = isorank.cell.telemetry.as_ref().expect("telemetry block in sweep row");
    assert!(!telemetry.converged, "truncation must survive the sweep path");
    assert!(isorank.cell.accuracy.is_some(), "the truncated cell still reports measures");
    let json = graphalign_json::to_string_compact(isorank);
    assert!(
        json.contains("\"telemetry\":{\"converged\":false"),
        "the JSON row carries the verdict: {json}"
    );

    drop(_restore);

    // With the Table 1 defaults restored, the same IsoRank cell converges —
    // the non-convergence above is the cap's doing, not the solver's.
    let cell =
        run_cell(Algo::IsoRank, &base, true, &noise, AssignmentMethod::JonkerVolgenant, &policy);
    let telemetry = cell.telemetry.as_ref().expect("telemetry block");
    assert!(
        telemetry.converged,
        "IsoRank at defaults should converge on a 60-node graph: {:?}",
        telemetry.stop_reasons
    );
}

#[test]
fn telemetry_is_thread_count_invariant() {
    let _guard = serial();
    graphalign_bench::fault::set_for_test(None);
    let base = small_graph();
    let noise = NoiseConfig::new(NoiseModel::OneWay, 0.02);
    let mut policy = RunPolicy::new(3, 7, true);
    policy.trace = true;

    let run = |threads: usize| {
        graphalign_par::set_max_threads(threads);
        let out = run_cell_traced(
            Algo::IsoRank,
            &base,
            true,
            &noise,
            AssignmentMethod::JonkerVolgenant,
            &policy,
        );
        graphalign_par::set_max_threads(0);
        out
    };
    let (cell_1, series_1) = run(1);
    let (cell_8, series_8) = run(8);

    // Counters, stop reasons, and iteration totals are part of the result,
    // not of the schedule: they must be bit-identical across thread counts.
    let t1 = cell_1.telemetry.expect("telemetry at 1 thread");
    let t8 = cell_8.telemetry.expect("telemetry at 8 threads");
    assert_eq!(t1.converged, t8.converged);
    assert_eq!(t1.solver_runs, t8.solver_runs);
    assert_eq!(t1.nonconverged_runs, t8.nonconverged_runs);
    assert_eq!(t1.iterations, t8.iterations);
    assert_eq!(t1.stop_reasons, t8.stop_reasons);
    assert_eq!(t1.matmuls, t8.matmuls);
    assert_eq!(t1.sinkhorn_sweeps, t8.sinkhorn_sweeps);
    assert_eq!(t1.auction_bids, t8.auction_bids);
    // Phase *timings* are wall clock; only the phase set is invariant.
    let names = |t: &graphalign_bench::telemetry::CellTelemetry| {
        t.phases.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>()
    };
    assert_eq!(names(&t1), names(&t8));

    // The traced residual series — every iterate of every solver run — are
    // bit-identical too, in the same (repetition, invocation) order.
    assert_eq!(series_1.len(), series_8.len());
    for ((r1, s1), (r8, s8)) in series_1.iter().zip(&series_8) {
        assert_eq!(r1, r8);
        assert_eq!(s1.routine, s8.routine);
        assert_eq!(s1.convergence.iterations, s8.convergence.iterations);
        assert_eq!(s1.convergence.residual.to_bits(), s8.convergence.residual.to_bits());
        assert_eq!(s1.convergence.stop, s8.convergence.stop);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&s1.residuals), bits(&s8.residuals), "{} series drifted", s1.routine);
    }
    assert!(!series_1.is_empty(), "tracing an IsoRank cell must record residual series");
}

#[test]
fn untraced_policy_still_aggregates_telemetry() {
    let _guard = serial();
    graphalign_bench::fault::set_for_test(None);
    let base = small_graph();
    let noise = NoiseConfig::new(NoiseModel::OneWay, 0.0);
    let policy = RunPolicy::new(1, 7, true);
    assert!(!policy.trace);

    let (cell, series) = run_cell_traced(
        Algo::IsoRank,
        &base,
        true,
        &noise,
        AssignmentMethod::JonkerVolgenant,
        &policy,
    );
    assert!(series.is_empty(), "residual series are opt-in via --trace");
    let telemetry = cell.telemetry.expect("events and counters are always collected");
    assert!(telemetry.solver_runs > 0);
    assert!(telemetry.iterations > 0);
    assert!(telemetry.matmuls > 0, "IsoRank's power iteration counts matmuls");
}
