//! Serve-layer chaos suite: every injectable fault class must yield the
//! right status code, a classified job error, the matching telemetry
//! counter — and a server that keeps serving bit-identical results
//! afterwards, at 1 and 8 solver threads alike.
//!
//! Fault arming uses the shared [`graphalign_par::fault`] spec, which is
//! process-global; every test grabs `FAULT_LOCK` so armed faults never
//! leak across concurrently running tests, and disarms before releasing.

use graphalign_json::Json;
use graphalign_par::fault;
use graphalign_serve::{http, start, ServeConfig, ServerHandle};
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;

/// Serializes chaos tests (the fault spec and the solver thread count are
/// process-global).
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn post(addr: &str, path: &str, body: &[u8]) -> Json {
    let resp = http::request(addr, "POST", path, body).expect("request");
    assert_eq!(resp.status, 200, "POST {path}: {}", resp.body);
    resp.json()
}

fn upload(addr: &str, g: &graphalign_graph::Graph) -> String {
    let mut text = Vec::new();
    graphalign_graph::io::write_edge_list(g, &mut text).expect("serialize");
    post(addr, "/graphs", &text).get("id").and_then(Json::as_str).expect("graph id").to_string()
}

fn submit(addr: &str, src: &str, tgt: &str, algorithm: &str, timeout: Option<f64>) -> usize {
    let timeout = timeout.map_or(String::new(), |t| format!(",\"timeout\":{t}"));
    let body = format!(
        "{{\"source\":{src:?},\"target\":{tgt:?},\"algorithm\":{algorithm:?},\
         \"assignment\":\"nn\"{timeout}}}"
    );
    post(addr, "/jobs", body.as_bytes()).get("job").and_then(Json::as_f64).expect("job id") as usize
}

/// Polls job `id` to any terminal status.
fn wait_terminal(addr: &str, id: usize) -> Json {
    for _ in 0..60_000 {
        let resp = http::request(addr, "GET", &format!("/jobs/{id}"), b"").expect("poll");
        assert_eq!(resp.status, 200, "{}", resp.body);
        let body = resp.json();
        match body.get("status").and_then(Json::as_str).expect("status") {
            "queued" | "running" => std::thread::sleep(Duration::from_millis(1)),
            _ => return body,
        }
    }
    panic!("job {id} never reached a terminal status");
}

fn str_field<'a>(body: &'a Json, key: &str) -> &'a str {
    body.get(key).and_then(Json::as_str).unwrap_or("")
}

fn num_field(body: &Json, path: &[&str]) -> f64 {
    let mut v = body;
    for key in path {
        v = v.get(key).unwrap_or(&Json::Null);
    }
    v.as_f64().unwrap_or(f64::NAN)
}

fn stats(addr: &str) -> Json {
    let resp = http::request(addr, "GET", "/stats", b"").expect("stats");
    assert_eq!(resp.status, 200);
    resp.json()
}

fn test_pair() -> (graphalign_graph::Graph, graphalign_graph::Graph) {
    let source = graphalign_gen::powerlaw_cluster(60, 3, 0.3, 21);
    let instance = graphalign_noise::make_instance(
        &source,
        &graphalign_noise::NoiseConfig::new(graphalign_noise::NoiseModel::OneWay, 0.02),
        22,
    );
    (source, instance.target)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("graphalign-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn stop(server: ServerHandle) {
    server.shutdown();
    server.wait();
}

/// Runs the same clean query at 1 and 8 solver threads and asserts the
/// mappings agree; returns the mapping. The determinism contract must hold
/// even right after a contained fault.
fn clean_job_bit_identical(addr: &str, src: &str, tgt: &str, algorithm: &str) -> Json {
    graphalign_par::set_max_threads(1);
    let at1 = wait_terminal(addr, submit(addr, src, tgt, algorithm, None));
    assert_eq!(str_field(&at1, "status"), "done", "clean follow-up job must succeed: {at1:?}");
    graphalign_par::set_max_threads(8);
    let at8 = wait_terminal(addr, submit(addr, src, tgt, algorithm, None));
    assert_eq!(str_field(&at8, "status"), "done");
    assert_eq!(
        at1.get("mapping"),
        at8.get("mapping"),
        "{algorithm}: mapping must be bit-identical at 1 and 8 threads"
    );
    at1.get("mapping").expect("mapping present").clone()
}

#[test]
fn injected_worker_panic_is_contained_classified_and_survivable() {
    let _guard = lock();
    let server = start(ServeConfig::default()).expect("start");
    let addr = server.addr().to_string();
    let (source, target) = test_pair();
    let (src, tgt) = (upload(&addr, &source), upload(&addr, &target));

    fault::set_for_test(Some("serve:worker:REGAL:panic"));
    let failed = wait_terminal(&addr, submit(&addr, &src, &tgt, "REGAL", None));
    assert_eq!(str_field(&failed, "status"), "error");
    assert_eq!(str_field(&failed, "error_class"), "panic");
    assert!(str_field(&failed, "error").contains("panicked"), "{failed:?}");
    assert_eq!(num_field(&failed, &["attempts"]), 1.0, "panics never retry");

    fault::set_for_test(None);
    // The pool survived: the counter moved, every worker is alive, and the
    // same query now completes deterministically.
    let s = stats(&addr);
    assert_eq!(num_field(&s, &["resilience", "panics_contained"]), 1.0);
    assert_eq!(num_field(&s, &["resilience", "workers_alive"]), num_field(&s, &["workers"]));
    clean_job_bit_identical(&addr, &src, &tgt, "REGAL");
    stop(server);
}

#[test]
fn injected_solver_stall_becomes_a_timeout_not_a_wedged_worker() {
    let _guard = lock();
    let server = start(ServeConfig::default()).expect("start");
    let addr = server.addr().to_string();
    let (source, target) = test_pair();
    let (src, tgt) = (upload(&addr, &source), upload(&addr, &target));

    fault::set_for_test(Some("serve:worker:IsoRank:stall"));
    let stalled = wait_terminal(&addr, submit(&addr, &src, &tgt, "IsoRank", Some(0.2)));
    assert_eq!(str_field(&stalled, "status"), "timeout", "{stalled:?}");
    assert_eq!(str_field(&stalled, "error_class"), "timeout");

    fault::set_for_test(None);
    clean_job_bit_identical(&addr, &src, &tgt, "IsoRank");
    stop(server);
}

#[test]
fn injected_numeric_failures_retry_with_backoff_until_exhausted() {
    let _guard = lock();
    let server = start(ServeConfig { job_retries: 2, ..ServeConfig::default() }).expect("start");
    let addr = server.addr().to_string();
    let (source, target) = test_pair();
    let (src, tgt) = (upload(&addr, &source), upload(&addr, &target));

    fault::set_for_test(Some("serve:worker:REGAL:numeric"));
    let failed = wait_terminal(&addr, submit(&addr, &src, &tgt, "REGAL", None));
    assert_eq!(str_field(&failed, "status"), "error");
    assert_eq!(str_field(&failed, "error_class"), "numeric");
    assert_eq!(num_field(&failed, &["attempts"]), 3.0, "1 try + 2 retries: {failed:?}");
    assert_eq!(num_field(&stats(&addr), &["resilience", "retries"]), 2.0);

    fault::set_for_test(None);
    // A fresh attempt (no fault) succeeds and retries stop accruing.
    let clean = wait_terminal(&addr, submit(&addr, &src, &tgt, "REGAL", None));
    assert_eq!(str_field(&clean, "status"), "done");
    assert_eq!(num_field(&clean, &["attempts"]), 1.0);
    assert_eq!(num_field(&stats(&addr), &["resilience", "retries"]), 2.0);
    stop(server);
}

#[test]
fn injected_cache_read_io_error_recomputes_without_quarantining() {
    let _guard = lock();
    let dir = temp_dir("io");
    let (source, target) = test_pair();

    // Warm the persisted cache, then stop the server so the next one must
    // go to disk.
    let first = start(ServeConfig { cache_dir: Some(dir.clone()), ..ServeConfig::default() })
        .expect("start");
    let addr = first.addr().to_string();
    let (src, tgt) = (upload(&addr, &source), upload(&addr, &target));
    let baseline = wait_terminal(&addr, submit(&addr, &src, &tgt, "REGAL", None));
    assert_eq!(str_field(&baseline, "status"), "done");
    stop(first);

    let second = start(ServeConfig { cache_dir: Some(dir.clone()), ..ServeConfig::default() })
        .expect("start");
    let addr = second.addr().to_string();
    let (src, tgt) = (upload(&addr, &source), upload(&addr, &target));
    fault::set_for_test(Some("serve:cache:read:io"));
    let recomputed = wait_terminal(&addr, submit(&addr, &src, &tgt, "REGAL", None));
    fault::set_for_test(None);
    // An IO error is not corruption: the job recomputes and succeeds, the
    // io_errors counter moves, and nothing is quarantined.
    assert_eq!(str_field(&recomputed, "status"), "done");
    assert_eq!(recomputed.get("mapping"), baseline.get("mapping"), "recompute is bit-identical");
    let s = stats(&addr);
    assert!(num_field(&s, &["cache", "io_errors"]) >= 1.0, "{s:?}");
    assert_eq!(num_field(&s, &["cache", "quarantined"]), 0.0);
    clean_job_bit_identical(&addr, &src, &tgt, "REGAL");
    stop(second);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn healthz_cycles_ready_degraded_ready_across_a_torn_persisted_entry() {
    let _guard = lock();
    let dir = temp_dir("torn");
    let (source, target) = test_pair();

    // Round 1: a torn write (injected at the persist site) leaves half an
    // entry under the final name — exactly what the atomic rename protocol
    // prevents on the real path.
    let first = start(ServeConfig { cache_dir: Some(dir.clone()), ..ServeConfig::default() })
        .expect("start");
    let addr = first.addr().to_string();
    let (src, tgt) = (upload(&addr, &source), upload(&addr, &target));
    let healthz = http::request(&addr, "GET", "/healthz", b"").expect("healthz");
    assert_eq!(healthz.status, 200, "fresh server is ready: {}", healthz.body);
    fault::set_for_test(Some("serve:cache:persist:truncate"));
    let torn = wait_terminal(&addr, submit(&addr, &src, &tgt, "REGAL", None));
    fault::set_for_test(None);
    assert_eq!(str_field(&torn, "status"), "done", "a torn persist never fails the job");
    stop(first);

    // Round 2: a restarted server discovers the damage at startup —
    // degraded, never fatal — then heals by recomputing and re-persisting.
    let second = start(ServeConfig { cache_dir: Some(dir.clone()), ..ServeConfig::default() })
        .expect("start");
    let addr = second.addr().to_string();
    let degraded = http::request(&addr, "GET", "/healthz", b"").expect("healthz");
    assert_eq!(degraded.status, 503, "startup scan must flag the torn entry: {}", degraded.body);
    let body = degraded.json();
    assert_eq!(str_field(&body, "status"), "degraded");
    assert_eq!(body.get("cache_integrity_ok"), Some(&Json::Bool(false)));
    let s = stats(&addr);
    assert_eq!(num_field(&s, &["cache", "quarantined"]), 1.0);
    assert_eq!(num_field(&s, &["cache", "pending_integrity"]), 1.0);

    let (src, tgt) = (upload(&addr, &source), upload(&addr, &target));
    let healed = wait_terminal(&addr, submit(&addr, &src, &tgt, "REGAL", None));
    assert_eq!(str_field(&healed, "status"), "done");
    assert_eq!(healed.get("mapping"), torn.get("mapping"), "recompute is bit-identical");
    let ready = http::request(&addr, "GET", "/healthz", b"").expect("healthz");
    assert_eq!(ready.status, 200, "re-persisting heals the cache: {}", ready.body);
    assert_eq!(num_field(&stats(&addr), &["cache", "pending_integrity"]), 0.0);
    clean_job_bit_identical(&addr, &src, &tgt, "REGAL");
    stop(second);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn full_queue_answers_429_with_a_retry_after_and_drains() {
    let _guard = lock();
    // One worker and a one-slot queue: stall the worker so the queue holds,
    // then watch the third submission bounce with a Retry-After.
    let server =
        start(ServeConfig { workers: 1, max_queued: 1, ..ServeConfig::default() }).expect("start");
    let addr = server.addr().to_string();
    let (source, target) = test_pair();
    let (src, tgt) = (upload(&addr, &source), upload(&addr, &target));

    fault::set_for_test(Some("serve:worker:IsoRank:stall"));
    let running = submit(&addr, &src, &tgt, "IsoRank", Some(2.0));
    // Wait until the worker has picked it up so the next submission is the
    // one queued job.
    for _ in 0..10_000 {
        let body = wait_status(&addr, running);
        if body != "queued" {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let queued = submit(&addr, &src, &tgt, "IsoRank", Some(2.0));

    let body = format!(
        "{{\"source\":{src:?},\"target\":{tgt:?},\"algorithm\":\"IsoRank\",\
         \"assignment\":\"nn\",\"timeout\":2.0}}"
    );
    let refused = http::request(&addr, "POST", "/jobs", body.as_bytes()).expect("submit");
    assert_eq!(refused.status, 429, "{}", refused.body);
    let retry_after: u64 = refused
        .header("retry-after")
        .expect("429 carries Retry-After")
        .parse()
        .expect("Retry-After is whole seconds");
    assert!(retry_after >= 1);
    assert_eq!(num_field(&stats(&addr), &["resilience", "rejected_429"]), 1.0);

    // The stalled jobs drain as timeouts; afterwards admission reopens.
    fault::set_for_test(None);
    wait_terminal(&addr, running);
    wait_terminal(&addr, queued);
    let clean = wait_terminal(&addr, submit(&addr, &src, &tgt, "IsoRank", None));
    assert_eq!(str_field(&clean, "status"), "done");
    stop(server);
}

fn wait_status(addr: &str, id: usize) -> String {
    let resp = http::request(addr, "GET", &format!("/jobs/{id}"), b"").expect("poll");
    resp.json().get("status").and_then(Json::as_str).unwrap_or("").to_string()
}

#[test]
fn oversized_and_malformed_requests_get_413_and_400() {
    let _guard = lock();
    let server =
        start(ServeConfig { max_body_bytes: 1024, ..ServeConfig::default() }).expect("start");
    let addr = server.addr().to_string();
    let oversized = vec![b'x'; 4096];
    let resp = http::request(&addr, "POST", "/graphs", &oversized).expect("request");
    assert_eq!(resp.status, 413, "{}", resp.body);
    let bad = http::request(&addr, "POST", "/jobs", b"not json").expect("request");
    assert_eq!(bad.status, 400);
    // The server still serves after refusing both.
    let ok = http::request(&addr, "GET", "/healthz", b"").expect("healthz");
    assert_eq!(ok.status, 200);
    stop(server);
}

#[test]
fn slow_loris_connections_get_408_and_release_their_thread() {
    let _guard = lock();
    let server = start(ServeConfig {
        io_timeout: Some(Duration::from_millis(200)),
        ..ServeConfig::default()
    })
    .expect("start");
    let addr = server.addr().to_string();

    // Open a connection, send half a request line, and stop.
    use std::io::{Read, Write};
    let mut loris = std::net::TcpStream::connect(&addr).expect("connect");
    loris.write_all(b"POST /graphs HT").expect("trickle");
    loris.flush().expect("flush");
    let mut response = String::new();
    loris.set_read_timeout(Some(Duration::from_secs(5))).expect("client deadline");
    loris.read_to_string(&mut response).expect("server must answer, not hang");
    assert!(response.starts_with("HTTP/1.1 408"), "got: {response:?}");

    // The handler thread is free again; normal traffic proceeds.
    let ok = http::request(&addr, "GET", "/healthz", b"").expect("healthz");
    assert_eq!(ok.status, 200);
    stop(server);
}

/// Satellite property test: *any* truncation or single-bit flip of a
/// persisted `similarity/v1` entry must be quarantined and recomputed —
/// bit-identical mapping, never an error response. Exhaustive prefix
/// truncations are covered at the serialize unit level; here a
/// deterministic spread of corruptions runs through the full server stack.
#[test]
fn any_persisted_corruption_yields_quarantine_and_bit_identical_recompute() {
    let _guard = lock();
    let dir = temp_dir("prop");
    let (source, target) = test_pair();

    // Produce one good persisted entry and a baseline mapping.
    let warm = start(ServeConfig { cache_dir: Some(dir.clone()), ..ServeConfig::default() })
        .expect("start");
    let addr = warm.addr().to_string();
    let (src, tgt) = (upload(&addr, &source), upload(&addr, &target));
    let baseline = wait_terminal(&addr, submit(&addr, &src, &tgt, "REGAL", None));
    assert_eq!(str_field(&baseline, "status"), "done");
    stop(warm);

    let entry_path = std::fs::read_dir(&dir)
        .expect("cache dir")
        .flatten()
        .map(|e| e.path())
        .find(|p| p.to_string_lossy().ends_with(".sim.json"))
        .expect("one persisted entry");
    let pristine = std::fs::read(&entry_path).expect("read entry");

    // A deterministic spread of corruptions: truncations at several depths
    // and single-bit flips at several offsets (no RNG — the run must be
    // reproducible).
    let mut corruptions: Vec<Vec<u8>> = Vec::new();
    for frac in [0, 1, 3, 7] {
        corruptions.push(pristine[..pristine.len() * frac / 8].to_vec());
    }
    corruptions.push(pristine[..pristine.len() - 1].to_vec());
    for (i, bit) in [(0usize, 0u8), (pristine.len() / 2, 3), (pristine.len() - 2, 6)] {
        let mut flipped = pristine.clone();
        flipped[i] ^= 1 << bit;
        corruptions.push(flipped);
    }

    for (case, corrupt) in corruptions.iter().enumerate() {
        std::fs::write(&entry_path, corrupt).expect("plant corruption");
        let server = start(ServeConfig { cache_dir: Some(dir.clone()), ..ServeConfig::default() })
            .expect("start");
        let addr = server.addr().to_string();
        let (src, tgt) = (upload(&addr, &source), upload(&addr, &target));
        let job = wait_terminal(&addr, submit(&addr, &src, &tgt, "REGAL", None));
        assert_eq!(str_field(&job, "status"), "done", "case {case}: corruption must not error");
        assert_eq!(
            job.get("mapping"),
            baseline.get("mapping"),
            "case {case}: recomputed mapping must be bit-identical"
        );
        let s = stats(&addr);
        // Quarantined either by the startup scan or (if the flip somehow
        // escaped the scan's notice, which would itself be a bug) the read
        // path — and re-persisting healed it.
        assert!(num_field(&s, &["cache", "quarantined"]) >= 1.0, "case {case}: {s:?}");
        assert_eq!(num_field(&s, &["cache", "pending_integrity"]), 0.0, "case {case}");
        let healthz = http::request(&addr, "GET", "/healthz", b"").expect("healthz");
        assert_eq!(healthz.status, 200, "case {case}: healed server is ready");
        stop(server);
        // The healed entry is now pristine again for the next corruption.
    }
    std::fs::remove_dir_all(&dir).ok();
}
