//! Golden test of the similarity "pipeline currency": for every registry
//! algorithm × every assignment method, the production [`Aligner::align_with`]
//! path — which may run on a factored (`LowRank`) or `Sparse` similarity —
//! must produce a matching *bit-identical* to running the same method on the
//! densified similarity, and the factored NN/SG fast paths must never
//! materialize a dense `n × n` (checked through the densification telemetry
//! wired into `Similarity::to_dense`).
//!
//! One `#[test]` on purpose: the telemetry sink is process-global, so the
//! counters are only attributable while no sibling test runs concurrently.

use graphalign::registry;
use graphalign_assignment::{assign, AssignmentMethod};
use graphalign_gen as gen;
use graphalign_graph::permutation::AlignmentInstance;
use graphalign_linalg::Similarity;
use graphalign_par::telemetry;

#[test]
fn align_with_matches_the_densified_reference_for_every_cell() {
    let g = gen::powerlaw_cluster(36, 4, 0.4, 11);
    let inst = AlignmentInstance::permuted(g, 12);
    let _guard = telemetry::install(false);
    // The algorithms that emit `Similarity::LowRank`: their NN/SG cells are
    // exactly the paths the memory refactor promises never densify.
    let factored = ["LREA", "REGAL", "CONE", "GRASP"];
    let mut cells = 0;
    for a in registry().iter() {
        for method in AssignmentMethod::ALL {
            if a.name() == "GRAAL" && method == AssignmentMethod::SortGreedy {
                // GRAAL's native matching is the integral seed-and-extend,
                // deliberately not an `assign` call (paper §6.2).
                continue;
            }
            // Reference: materialize whatever representation the algorithm
            // hands this method and run the dense solver on it.
            let reference = {
                let sim = a.similarity_for(&inst.source, &inst.target, method).unwrap();
                assign(&Similarity::Dense(sim.into_dense()), method)
            };
            let _ = telemetry::drain();
            let produced = a.align_with(&inst.source, &inst.target, method).unwrap();
            let t = telemetry::drain();
            assert_eq!(
                produced,
                reference,
                "{} + {}: production path diverged from the densified reference",
                a.name(),
                method.label()
            );
            let fast_path =
                matches!(method, AssignmentMethod::NearestNeighbor | AssignmentMethod::SortGreedy);
            if factored.contains(&a.name()) && fast_path {
                assert_eq!(
                    t.densifications,
                    0,
                    "{} + {} materialized a dense n×n on a factored fast path",
                    a.name(),
                    method.label()
                );
            }
            cells += 1;
        }
    }
    assert_eq!(cells, 9 * 5 - 1, "every (algorithm, method) cell must be exercised");
}
