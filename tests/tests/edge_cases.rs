//! Failure-injection and degenerate-input tests: every algorithm must either
//! produce a valid alignment or report a clean error — never panic, never
//! return NaN-scored garbage — on the pathological graphs the noise models
//! can produce (disconnected graphs, stars, empty edge sets, complete
//! graphs, size-mismatched pairs).

use graphalign::{registry, Aligner};
use graphalign_assignment::AssignmentMethod;
use graphalign_graph::Graph;
use graphalign_metrics::evaluate;

fn check_valid(aligner: &dyn Aligner, source: &Graph, target: &Graph, context: &str) {
    match aligner.align_with(source, target, AssignmentMethod::JonkerVolgenant) {
        Ok(alignment) => {
            assert_eq!(
                alignment.len(),
                source.node_count(),
                "{} on {context}: wrong alignment length",
                aligner.name()
            );
            let mut seen = vec![false; target.node_count()];
            for &v in &alignment {
                assert!(
                    v < target.node_count(),
                    "{} on {context}: image out of range",
                    aligner.name()
                );
                assert!(!seen[v], "{} on {context}: duplicate image", aligner.name());
                seen[v] = true;
            }
            let truth: Vec<usize> = (0..source.node_count()).collect();
            let r = evaluate(source, target, &alignment, &truth);
            for (name, v) in
                [("acc", r.accuracy), ("mnc", r.mnc), ("ec", r.ec), ("ics", r.ics), ("s3", r.s3)]
            {
                assert!(
                    v.is_finite() && (0.0..=1.0).contains(&v),
                    "{} on {context}: {name} = {v}",
                    aligner.name()
                );
            }
        }
        Err(e) => {
            // A clean error is acceptable for degenerate inputs; it must
            // carry a message.
            assert!(!e.to_string().is_empty());
        }
    }
}

#[test]
fn disconnected_graphs() {
    // Two components plus isolated nodes — the regime where the paper says
    // GRASP falters; it must fail gracefully or return a valid matching.
    let g =
        Graph::from_edges(14, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 6), (6, 3), (7, 8)]);
    for aligner in registry() {
        check_valid(aligner.as_ref(), &g, &g, "disconnected graph");
    }
}

#[test]
fn star_graph() {
    // Extreme degree skew: hub of degree n−1, leaves of degree 1.
    let edges: Vec<(usize, usize)> = (1..12).map(|i| (0, i)).collect();
    let g = Graph::from_edges(12, &edges);
    for aligner in registry() {
        check_valid(aligner.as_ref(), &g, &g, "star graph");
    }
}

#[test]
fn complete_graph() {
    // Every node automorphic to every other: algorithms must still return
    // *some* valid permutation.
    let mut edges = Vec::new();
    for i in 0..10 {
        for j in (i + 1)..10 {
            edges.push((i, j));
        }
    }
    let g = Graph::from_edges(10, &edges);
    for aligner in registry() {
        check_valid(aligner.as_ref(), &g, &g, "complete graph");
    }
}

#[test]
fn edgeless_graph() {
    let g = Graph::from_edges(8, &[]);
    for aligner in registry() {
        check_valid(aligner.as_ref(), &g, &g, "edgeless graph");
    }
}

#[test]
fn path_graph() {
    // Minimal connectivity; bisection and spectral methods see extreme
    // diameter.
    let edges: Vec<(usize, usize)> = (0..15).map(|i| (i, i + 1)).collect();
    let g = Graph::from_edges(16, &edges);
    for aligner in registry() {
        check_valid(aligner.as_ref(), &g, &g, "path graph");
    }
}

#[test]
fn size_mismatch_smaller_source_is_supported() {
    // Source strictly smaller than target: one-to-one into a superset.
    let small = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
    let big =
        Graph::from_edges(9, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (6, 7), (7, 8)]);
    for aligner in registry() {
        check_valid(aligner.as_ref(), &small, &big, "smaller source");
    }
}

#[test]
fn size_mismatch_larger_source_is_rejected() {
    let small = Graph::from_edges(3, &[(0, 1), (1, 2)]);
    let big = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
    for aligner in registry() {
        let err = aligner
            .align_with(&big, &small, AssignmentMethod::JonkerVolgenant)
            .err()
            .unwrap_or_else(|| panic!("{} accepted an impossible instance", aligner.name()));
        assert!(err.to_string().contains("impossible"), "{}: {err}", aligner.name());
    }
}

#[test]
fn empty_source_is_rejected() {
    let empty = Graph::from_edges(0, &[]);
    let g = Graph::from_edges(2, &[(0, 1)]);
    for aligner in registry() {
        assert!(
            aligner.align_with(&empty, &g, AssignmentMethod::JonkerVolgenant).is_err(),
            "{} accepted an empty source",
            aligner.name()
        );
    }
}

#[test]
fn single_node_graphs() {
    let g = Graph::from_edges(1, &[]);
    for aligner in registry() {
        check_valid(aligner.as_ref(), &g, &g, "single node");
    }
}

#[test]
fn two_node_graphs() {
    let g = Graph::from_edges(2, &[(0, 1)]);
    for aligner in registry() {
        check_valid(aligner.as_ref(), &g, &g, "two nodes");
    }
}
