//! Diagnostic probe for GRASP's noise robustness on power-law graphs.

use graphalign::grasp::Grasp;
use graphalign::Aligner;
use graphalign_assignment::AssignmentMethod;
use graphalign_metrics::accuracy;
use graphalign_noise::{make_instance, NoiseConfig, NoiseModel};

#[test]
fn grasp_noise_profile_on_pl() {
    let g = graphalign_gen::powerlaw_cluster(400, 5, 0.5, 42);
    let k40 = Grasp { k: 40, ..Grasp::default() };
    for level in [0.0, 0.01, 0.02, 0.05] {
        let mut total = 0.0;
        for seed in 0..2 {
            let inst = make_instance(&g, &NoiseConfig::new(NoiseModel::OneWay, level), 7 + seed);
            let a = k40
                .align_with(&inst.source, &inst.target, AssignmentMethod::JonkerVolgenant)
                .unwrap();
            total += accuracy(&a, &inst.ground_truth);
        }
        println!("GRASP-k40 PL400 level {level}: {:.3}", total / 2.0);
    }
    for (name, h) in [
        ("WS", graphalign_gen::watts_strogatz(300, 10, 0.5, 3)),
        ("BA", graphalign_gen::barabasi_albert(300, 5, 2023 ^ 0x9e3779b97f4a7c15)),
        ("NW", graphalign_gen::newman_watts(300, 7, 0.5, 4)),
    ] {
        let inst = make_instance(&h, &NoiseConfig::new(NoiseModel::OneWay, 0.0), 9);
        let a =
            k40.align_with(&inst.source, &inst.target, AssignmentMethod::JonkerVolgenant).unwrap();
        println!("GRASP-k40 {name}: {:.3}", accuracy(&a, &inst.ground_truth));
    }
}
