//! Resilience suite: the fault-tolerance contract of the experiment
//! harness, driven through the same sweep path the figure binaries use.
//!
//! * an injected panic in one cell is caught, classified, and leaves every
//!   other cell of the sweep untouched;
//! * an injected stall winds down through the cooperative cell budget and
//!   is classified as a timeout;
//! * a sweep interrupted after N cells resumes from its journal, replaying
//!   the journaled cells bit-identically and re-running only the rest;
//! * journaled cells are *not* re-executed on resume (a fault armed for a
//!   journaled cell never fires).
//!
//! The fault spec and the journal files are process-global, so these tests
//! serialize on a mutex.

use graphalign_bench::figures::{SweepRow, SweepSession};
use graphalign_bench::journal::Journal;
use graphalign_bench::suite::Algo;
use graphalign_bench::{fault, Config};
use graphalign_noise::NoiseModel;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    // A panicking test poisons the mutex; the remaining tests still run.
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn small_graph() -> graphalign_graph::Graph {
    graphalign_gen::powerlaw_cluster(60, 3, 0.5, 1)
}

fn cfg_with(out: Option<PathBuf>) -> Config {
    Config { seed: 11, out, ..Config::default() }
}

fn sweep(session: &mut SweepSession, levels: &[f64]) -> Vec<SweepRow> {
    session.quality_sweep("t", &small_graph(), true, &[NoiseModel::OneWay], levels, 1)
}

fn temp_out(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ga-resilience-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join("sweep.json")
}

#[test]
fn injected_panic_is_isolated_to_its_cell() {
    let _guard = serial();
    fault::set_for_test(Some("IsoRank:One-Way:0.02:r0:panic"));
    let cfg = cfg_with(None);
    let mut session = SweepSession::without_journal(&cfg);
    let rows = sweep(&mut session, &[0.0, 0.02]);
    fault::set_for_test(None);

    assert_eq!(rows.len(), Algo::ALL.len() * 2, "the process survived and the sweep completed");
    let hit = rows
        .iter()
        .find(|r| r.cell.algorithm == "IsoRank" && r.level == 0.02)
        .expect("faulted cell present");
    assert_eq!(hit.cell.error_class.as_deref(), Some("panic"));
    assert_eq!(hit.cell.reps_ok, 0);
    assert!(
        hit.cell.error.as_deref().expect("panic message recorded").contains("injected fault"),
        "error carries the panic payload: {:?}",
        hit.cell.error
    );
    assert!(hit.cell.wall_clock > 0.0, "the attempt's elapsed time is recorded");
    for r in rows.iter().filter(|r| !(r.cell.algorithm == "IsoRank" && r.level == 0.02)) {
        assert!(
            !r.cell.has_failure(),
            "{} at level {} disturbed by the injected panic: {:?}",
            r.cell.algorithm,
            r.level,
            r.cell.error
        );
        assert_eq!(r.cell.reps_ok, r.cell.reps);
    }
}

#[test]
fn injected_stall_is_classified_timeout() {
    let _guard = serial();
    fault::set_for_test(Some("IsoRank:One-Way:0:r0:stall"));
    let mut cfg = cfg_with(None);
    cfg.cell_timeout = Some(0.05);
    let mut session = SweepSession::without_journal(&cfg);
    let rows = sweep(&mut session, &[0.0]);
    fault::set_for_test(None);

    assert_eq!(rows.len(), Algo::ALL.len(), "the process survived the stalled cell");
    let hit = rows.iter().find(|r| r.cell.algorithm == "IsoRank").expect("stalled cell present");
    assert_eq!(hit.cell.error_class.as_deref(), Some("timeout"));
    assert_eq!(hit.cell.reps_ok, 0);
}

#[test]
fn interrupted_sweep_resumes_bit_identically() {
    let _guard = serial();
    fault::set_for_test(None);
    let out = temp_out("resume");
    let levels = [0.0, 0.02];

    // The uninterrupted reference run, journaling every cell.
    let cfg = cfg_with(Some(out.clone()));
    let mut session = SweepSession::new(&cfg);
    let reference = sweep(&mut session, &levels);
    drop(session);

    // Simulate a crash after 5 completed cells: keep the journal's first 5
    // lines plus the torn beginning of a 6th (an interrupted write).
    let jpath = Journal::path_for(&out);
    let text = std::fs::read_to_string(&jpath).expect("journal written");
    assert!(text.lines().count() >= levels.len() * Algo::ALL.len());
    let mut kept: String = text.lines().take(5).map(|l| format!("{l}\n")).collect();
    kept.push_str("{\"journal_seed\":\"11\",\"journal_re");
    std::fs::write(&jpath, kept).expect("truncate journal");

    let resume_cfg = Config { resume: true, ..cfg.clone() };
    let mut resumed_session = SweepSession::new(&resume_cfg);
    let resumed = sweep(&mut resumed_session, &levels);
    assert_eq!(resumed_session.replayed(), 5, "exactly the journaled cells replay");
    assert_eq!(resumed.len(), reference.len());

    for (i, (orig, re)) in reference.iter().zip(&resumed).enumerate() {
        if i < 5 {
            // Replayed cells are byte-for-byte the journaled ones, timing
            // fields included.
            assert_eq!(
                graphalign_json::to_string_compact(re),
                graphalign_json::to_string_compact(orig),
                "replayed cell {i} not bit-identical"
            );
        } else {
            // Re-executed cells reproduce every measure exactly (same seeds);
            // only the wall-clock fields may differ.
            assert_eq!(re.cell.algorithm, orig.cell.algorithm);
            assert_eq!(re.level, orig.level);
            assert_eq!(
                re.cell.accuracy.map(f64::to_bits),
                orig.cell.accuracy.map(f64::to_bits),
                "cell {i}"
            );
            assert_eq!(re.cell.mnc.map(f64::to_bits), orig.cell.mnc.map(f64::to_bits), "cell {i}");
            assert_eq!(re.cell.s3.map(f64::to_bits), orig.cell.s3.map(f64::to_bits), "cell {i}");
            assert_eq!(re.cell.ec.map(f64::to_bits), orig.cell.ec.map(f64::to_bits), "cell {i}");
            assert_eq!(re.cell.ics.map(f64::to_bits), orig.cell.ics.map(f64::to_bits), "cell {i}");
            assert_eq!(re.cell.reps_ok, orig.cell.reps_ok);
            assert_eq!(re.cell.error, orig.cell.error);
            assert_eq!(re.cell.error_class, orig.cell.error_class);
        }
    }
    std::fs::remove_dir_all(out.parent().expect("temp dir")).ok();
}

#[test]
fn journaled_cells_are_not_rerun_on_resume() {
    let _guard = serial();
    fault::set_for_test(None);
    let out = temp_out("noreplay");
    let levels = [0.0];

    // Journal a clean run of every cell.
    let cfg = cfg_with(Some(out.clone()));
    let mut session = SweepSession::new(&cfg);
    let clean = sweep(&mut session, &levels);
    drop(session);

    // Arm a fault that would blow up the IsoRank cell if it re-executed.
    fault::set_for_test(Some("IsoRank:One-Way:0:r0:panic"));
    let resume_cfg = Config { resume: true, ..cfg.clone() };
    let mut resumed_session = SweepSession::new(&resume_cfg);
    let resumed = sweep(&mut resumed_session, &levels);
    fault::set_for_test(None);

    assert_eq!(resumed_session.replayed(), clean.len(), "every cell replayed from the journal");
    let isorank =
        resumed.iter().find(|r| r.cell.algorithm == "IsoRank").expect("IsoRank cell present");
    assert!(
        !isorank.cell.has_failure(),
        "journaled cell re-executed (armed fault fired): {:?}",
        isorank.cell.error
    );
    std::fs::remove_dir_all(out.parent().expect("temp dir")).ok();
}
