//! XL-tier integration: the acceptance checks behind the "never densify"
//! million-node path, exercised at CI-friendly sizes.
//!
//! * the sharded blocked top-k must match the single-shard reference
//!   bit-identically at 1, 2, and 8 worker threads;
//! * the streamed chunked-CSR build must reproduce the in-memory
//!   `Graph::from_edges` construction exactly;
//! * the XL roster (REGAL with landmarks, landmark-Sinkhorn CONE, FPROP)
//!   must run similarity end-to-end on a streamed instance with zero
//!   densification events and a usable sliced-NN accuracy.

use graphalign::cone::Cone;
use graphalign::fprop::Fprop;
use graphalign::regal::Regal;
use graphalign::Aligner;
use graphalign_assignment::topk::{nearest_neighbor_sharded, sharded_row_top_k, TopKConfig};
use graphalign_datasets::stream;
use graphalign_graph::Graph;
use graphalign_linalg::{DenseMatrix, LowRankKernel, LowRankSim, Similarity};
use graphalign_par::telemetry;

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ga-xl-it-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn ring_embeddings(n: usize, d: usize, phase: f64) -> DenseMatrix {
    DenseMatrix::from_fn(n, d, |i, j| {
        ((i * (j + 2)) as f64 * 0.37 + phase).sin() * 0.5 + (j as f64 * 0.11).cos() * 0.25
    })
}

#[test]
fn sharded_top_k_is_bit_identical_at_1_2_8_threads() {
    let lr = LowRankSim::new(
        ring_embeddings(257, 6, 0.0),
        ring_embeddings(311, 6, 1.3),
        LowRankKernel::Dot,
    );
    // Single-shard, single-tile reference: the whole product in one walk.
    let reference_cfg = TopKConfig { shard_rows: usize::MAX, tile_cols: usize::MAX };
    graphalign_par::set_max_threads(1);
    let reference = sharded_row_top_k(&lr, 3, &reference_cfg);
    let sharded_cfg = TopKConfig { shard_rows: 32, tile_cols: 48 };
    for threads in [1, 2, 8] {
        graphalign_par::set_max_threads(threads);
        let got = sharded_row_top_k(&lr, 3, &sharded_cfg);
        assert_eq!(got.len(), reference.len());
        for (i, (g, r)) in got.iter().zip(&reference).enumerate() {
            assert_eq!(g.len(), r.len(), "row {i} at {threads} threads");
            for ((gv, gj), (rv, rj)) in g.iter().zip(r) {
                assert_eq!(gj, rj, "row {i} column at {threads} threads");
                assert_eq!(gv.to_bits(), rv.to_bits(), "row {i} value at {threads} threads");
            }
        }
        let nn = nearest_neighbor_sharded(&lr, &sharded_cfg);
        let nn_ref: Vec<usize> = reference.iter().map(|r| r[0].1).collect();
        assert_eq!(nn, nn_ref, "top-1 at {threads} threads");
    }
    graphalign_par::set_max_threads(0);
}

#[test]
fn streamed_csr_build_matches_from_edges() {
    let dir = scratch_dir("csr");
    let n = 500usize;
    // Ring plus deterministic chords, with duplicates and self-loops the
    // builder must drop — same cleanup contract as `Graph::from_edges`.
    let mut edges: Vec<(usize, usize)> = (0..n).map(|u| (u, (u + 1) % n)).collect();
    for k in 0..700 {
        let u = (k * 37) % n;
        let v = (k * k * 13 + 5) % n;
        edges.push((u, v)); // may be a self-loop or duplicate
        if k % 11 == 0 {
            edges.push((v, u)); // reversed duplicate
        }
    }
    let expected = Graph::from_edges(n, &edges);
    let path = dir.join("g.edges");
    let mut w = stream::EdgeStreamWriter::create(&path, n).expect("writer");
    for &(u, v) in &edges {
        w.push(u, v).expect("push edge");
    }
    let es = w.finish().expect("finish stream");
    let streamed = es.build_graph().expect("streamed build");
    assert_eq!(streamed, expected, "streamed chunked-CSR build must match from_edges");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn xl_roster_runs_streamed_instances_without_densifying() {
    let dir = scratch_dir("roster");
    let inst = stream::xl_instance(&dir, 600, 10.0, 42).expect("streamed instance");
    let roster: Vec<(&str, Box<dyn Aligner>)> = vec![
        ("REGAL", Box::new(Regal { landmarks: Some(16), ..Regal::default() })),
        (
            "CONE",
            Box::new(Cone { dim: 16, outer_iters: 4, landmarks: Some(24), ..Cone::default() }),
        ),
        ("FPROP", Box::new(Fprop::default())),
    ];
    for (name, aligner) in roster {
        let _sink = telemetry::install(false);
        let sim = aligner.similarity(&inst.source, &inst.target).expect("similarity runs");
        assert!(matches!(sim, Similarity::LowRank(_)), "{name} must emit a factored similarity");
        // Sliced NN probe over the first 64 rows against all columns.
        if let Similarity::LowRank(lr) = &sim {
            let idx: Vec<usize> = (0..64).collect();
            let mut sliced =
                LowRankSim::new(lr.ya().select_rows(&idx), lr.yb().clone(), lr.kernel());
            if let Some(off) = lr.row_offsets() {
                sliced = sliced.with_row_offsets(off[..64].to_vec());
            }
            let nn = nearest_neighbor_sharded(&sliced, &TopKConfig::default());
            let hits = nn.iter().zip(&inst.ground_truth[..64]).filter(|(a, b)| a == b).count();
            // The ring+chords instance is noiseless, but only REGAL/FPROP
            // see enough structure at n=600 for high recovery; any roster
            // member must at least beat random matching by a wide margin.
            assert!(
                hits * 20 >= 64,
                "{name}: {hits}/64 sliced-NN hits — below the 5% sanity floor"
            );
        }
        let t = telemetry::drain();
        assert_eq!(t.densifications, 0, "{name} densified on the XL path");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn streamed_instance_is_deterministic_per_seed() {
    let dir = scratch_dir("det");
    let a = stream::xl_instance(&dir.join("a"), 300, 10.0, 7).expect("instance a");
    let b = stream::xl_instance(&dir.join("b"), 300, 10.0, 7).expect("instance b");
    assert_eq!(a.source, b.source);
    assert_eq!(a.target, b.target);
    assert_eq!(a.ground_truth, b.ground_truth);
    let c = stream::xl_instance(&dir.join("c"), 300, 10.0, 8).expect("instance c");
    assert_ne!(a.ground_truth, c.ground_truth, "different seeds must differ");
    std::fs::remove_dir_all(&dir).ok();
}
