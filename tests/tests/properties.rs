//! Cross-crate property-based tests (proptest) on the pipeline invariants.

use graphalign_assignment::{assign, assignment_value, AssignmentMethod};
use graphalign_gen as gen;
use graphalign_graph::Graph;
use graphalign_linalg::{DenseMatrix, Similarity};
use graphalign_metrics::{accuracy, evaluate, mnc, s3};
use graphalign_noise::{make_instance, remove_edges, NoiseConfig, NoiseModel};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

fn arbitrary_graph() -> impl Strategy<Value = Graph> {
    (5usize..40, any::<u64>(), 0.05f64..0.5).prop_map(|(n, seed, p)| {
        // Seeded ER graph: arbitrary but reproducible per case.
        gen::erdos_renyi(n, p, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Removing edges never increases the edge count and never invents
    /// edges; the level is respected exactly.
    #[test]
    fn noise_removal_accounting(g in arbitrary_graph(), seed in any::<u64>(), level in 0.0f64..0.5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = remove_edges(&g, level, false, &mut rng);
        let budget = (level * g.edge_count() as f64).floor() as usize;
        prop_assert_eq!(h.edge_count(), g.edge_count() - budget);
        for (u, v) in h.edges() {
            prop_assert!(g.has_edge(u, v));
        }
    }

    /// Multi-modal noise preserves the edge count (it swaps edges).
    #[test]
    fn multimodal_preserves_edge_count(g in arbitrary_graph(), seed in any::<u64>()) {
        let cfg = NoiseConfig::new(NoiseModel::MultiModal, 0.2);
        let inst = make_instance(&g, &cfg, seed);
        prop_assert_eq!(inst.target.edge_count(), g.edge_count());
    }

    /// The ground truth of a noiseless instance scores 1.0 on every measure
    /// (for non-trivial graphs with at least one edge).
    #[test]
    fn ground_truth_is_perfect_without_noise(g in arbitrary_graph(), seed in any::<u64>()) {
        prop_assume!(g.edge_count() > 0);
        let cfg = NoiseConfig::new(NoiseModel::OneWay, 0.0);
        let inst = make_instance(&g, &cfg, seed);
        let r = evaluate(&inst.source, &inst.target, &inst.ground_truth, &inst.ground_truth);
        prop_assert_eq!(r.accuracy, 1.0);
        prop_assert!((r.ec - 1.0).abs() < 1e-12);
        prop_assert!((r.s3 - 1.0).abs() < 1e-12);
        prop_assert!((r.mnc - 1.0).abs() < 1e-12);
    }

    /// JV is optimal: no other tested assignment achieves a higher LAP
    /// objective on the same similarity matrix.
    #[test]
    fn jv_dominates_heuristics_on_objective(
        n in 1usize..9,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dense = DenseMatrix::from_fn(n, n, |_, _| rng.random_range(0.0..1.0));
        let sim = Similarity::Dense(dense);
        let m = sim.as_dense().expect("constructed dense");
        let jv = assignment_value(m, &assign(&sim, AssignmentMethod::JonkerVolgenant));
        for method in [AssignmentMethod::SortGreedy, AssignmentMethod::Hungarian, AssignmentMethod::Auction] {
            let other = assignment_value(m, &assign(&sim, method));
            prop_assert!(jv >= other - 1e-6, "{method:?} beat JV: {other} > {jv}");
        }
    }

    /// Quality measures stay in [0, 1] for arbitrary (even many-to-one)
    /// alignments.
    #[test]
    fn measures_are_always_bounded(
        g in arbitrary_graph(),
        mapping_seed in any::<u64>(),
    ) {
        let n = g.node_count();
        let mut rng = StdRng::seed_from_u64(mapping_seed);
        let alignment: Vec<usize> = (0..n).map(|_| rng.random_range(0..n)).collect();
        let truth: Vec<usize> = (0..n).collect();
        let r = evaluate(&g, &g, &alignment, &truth);
        for v in [r.accuracy, r.mnc, r.ec, r.ics, r.s3] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        // Spot identities.
        prop_assert!((accuracy(&alignment, &truth) - r.accuracy).abs() < 1e-15);
        prop_assert!((mnc(&g, &g, &alignment) - r.mnc).abs() < 1e-15);
        prop_assert!((s3(&g, &g, &alignment) - r.s3).abs() < 1e-15);
    }

    /// Generators honor their size contracts.
    #[test]
    fn generators_honor_node_counts(n in 12usize..60, seed in any::<u64>()) {
        prop_assert_eq!(gen::erdos_renyi(n, 0.1, seed).node_count(), n);
        prop_assert_eq!(gen::barabasi_albert(n, 3, seed).node_count(), n);
        prop_assert_eq!(gen::watts_strogatz(n, 4, 0.3, seed).node_count(), n);
        prop_assert_eq!(gen::newman_watts(n, 3, 0.3, seed).node_count(), n);
        prop_assert_eq!(gen::powerlaw_cluster(n, 3, 0.5, seed).node_count(), n);
    }
}
