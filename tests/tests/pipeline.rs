//! Cross-crate integration tests: the full generate → permute → perturb →
//! align → score pipeline, spanning every workspace crate.

use graphalign::{registry, Aligner};
use graphalign_assignment::AssignmentMethod;
use graphalign_gen as gen;
use graphalign_graph::permutation::AlignmentInstance;
use graphalign_metrics::{evaluate, s3};
use graphalign_noise::{make_instance, NoiseConfig, NoiseModel};

/// Every algorithm completes the full pipeline on a small power-law graph
/// and returns a valid one-to-one alignment under JV.
#[test]
fn every_algorithm_completes_the_pipeline() {
    let graph = gen::powerlaw_cluster(80, 4, 0.5, 11);
    let noise = NoiseConfig::new(NoiseModel::OneWay, 0.02);
    let instance = make_instance(&graph, &noise, 5);
    for aligner in registry() {
        let alignment = aligner
            .align_with(&instance.source, &instance.target, AssignmentMethod::JonkerVolgenant)
            .unwrap_or_else(|e| panic!("{} failed: {e}", aligner.name()));
        assert_eq!(alignment.len(), instance.source.node_count());
        let mut sorted = alignment.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..alignment.len()).collect::<Vec<_>>(),
            "{} must return a permutation under JV",
            aligner.name()
        );
        let report =
            evaluate(&instance.source, &instance.target, &alignment, &instance.ground_truth);
        for (name, v) in [
            ("accuracy", report.accuracy),
            ("mnc", report.mnc),
            ("ec", report.ec),
            ("ics", report.ics),
            ("s3", report.s3),
        ] {
            assert!(
                (0.0..=1.0).contains(&v),
                "{}: measure {name} = {v} out of range",
                aligner.name()
            );
        }
    }
}

/// On a noiseless isomorphic instance, the structure-exact methods recover
/// strong structural scores (the paper: "LREA and GRASP almost consistently
/// return the best alignment on graphs with no noise").
#[test]
fn structure_exact_methods_ace_isomorphic_instances() {
    let graph = gen::powerlaw_cluster(70, 4, 0.6, 3);
    let instance = AlignmentInstance::permuted(graph, 9);
    for aligner in registry() {
        let name = aligner.name();
        if !matches!(name, "GRASP" | "LREA" | "IsoRank") {
            continue;
        }
        let alignment = aligner
            .align_with(&instance.source, &instance.target, AssignmentMethod::JonkerVolgenant)
            .unwrap();
        let structural = s3(&instance.source, &instance.target, &alignment);
        assert!(structural > 0.6, "{name} S3 on an isomorphic instance: {structural}");
    }
}

/// Determinism: the whole pipeline is seeded, so two runs agree bit-for-bit.
#[test]
fn pipeline_is_deterministic_end_to_end() {
    let graph = gen::watts_strogatz(60, 6, 0.5, 21);
    let noise = NoiseConfig::new(NoiseModel::MultiModal, 0.05);
    let a = make_instance(&graph, &noise, 77);
    let b = make_instance(&graph, &noise, 77);
    assert_eq!(a.target, b.target);
    let grasp = graphalign::grasp::Grasp { q: 30, ..Default::default() };
    let x = grasp.align(&a.source, &a.target).unwrap();
    let y = grasp.align(&b.source, &b.target).unwrap();
    assert_eq!(x, y);
}

/// Noise monotonicity at the aggregate level: heavy noise does not *improve*
/// structural quality for a spectral method (averaged over seeds to absorb
/// run-to-run variance).
#[test]
fn more_noise_does_not_help() {
    let graph = gen::powerlaw_cluster(80, 5, 0.5, 31);
    let grasp = graphalign::grasp::Grasp { q: 30, ..Default::default() };
    let mean_s3 = |level: f64| -> f64 {
        (0..3)
            .map(|seed| {
                let noise = NoiseConfig::new(NoiseModel::OneWay, level);
                let inst = make_instance(&graph, &noise, seed);
                let alignment = grasp
                    .align_with(&inst.source, &inst.target, AssignmentMethod::JonkerVolgenant)
                    .unwrap();
                s3(&inst.source, &inst.target, &alignment)
            })
            .sum::<f64>()
            / 3.0
    };
    let clean = mean_s3(0.0);
    let noisy = mean_s3(0.20);
    assert!(clean >= noisy, "20% noise should not beat 0% noise: clean {clean} vs noisy {noisy}");
}

/// The dataset registry, noise models and aligners compose: align a
/// benchmark dataset replica against its noisy self.
#[test]
fn dataset_replica_aligns_end_to_end() {
    use graphalign_datasets::{replica, DatasetId};
    let graph = replica(DatasetId::CaNetscience); // 379 nodes
    let noise = NoiseConfig::new(NoiseModel::OneWay, 0.01);
    let instance = make_instance(&graph, &noise, 13);
    let nsd = graphalign::nsd::Nsd::default();
    let alignment =
        nsd.align_with(&instance.source, &instance.target, AssignmentMethod::SortGreedy).unwrap();
    let report = evaluate(&instance.source, &instance.target, &alignment, &instance.ground_truth);
    // NSD on a real-ish sparse graph: far above the 1/379 random baseline.
    assert!(report.accuracy > 0.05, "NSD accuracy {}", report.accuracy);
}

/// Evolving (real-noise) datasets flow through the alignment stack.
#[test]
fn evolving_dataset_protocol_end_to_end() {
    use graphalign_datasets::evolving::temporal;
    use graphalign_graph::Permutation;
    let base = gen::watts_strogatz(90, 8, 0.4, 17);
    let ds = temporal("mini", base, 23);
    let variant = &ds.variants[3]; // 99% retention
    let perm = Permutation::random(variant.graph.node_count(), 29);
    let instance = AlignmentInstance {
        source: ds.base.clone(),
        target: perm.apply_to_graph(&variant.graph),
        ground_truth: perm.as_slice().to_vec(),
    };
    let grasp = graphalign::grasp::Grasp { q: 30, ..Default::default() };
    let alignment = grasp.align(&instance.source, &instance.target).unwrap();
    let report = evaluate(&instance.source, &instance.target, &alignment, &instance.ground_truth);
    assert!(
        report.accuracy > 0.5,
        "GRASP at 99% retention should recover most nodes, got {}",
        report.accuracy
    );
}

/// The §6.2 finding in miniature: for IsoRank, optimal assignment (JV) is at
/// least as good as the greedy heuristic, and both beat many-to-one NN on
/// accuracy, averaged over instances.
#[test]
fn assignment_method_ordering_matches_the_paper() {
    let graph = gen::powerlaw_cluster(80, 4, 0.5, 41);
    let iso = graphalign::isorank::IsoRank::default();
    let mut jv_total = 0.0;
    let mut sg_total = 0.0;
    for seed in 0..3 {
        let noise = NoiseConfig::new(NoiseModel::OneWay, 0.02);
        let inst = make_instance(&graph, &noise, seed);
        let jv =
            iso.align_with(&inst.source, &inst.target, AssignmentMethod::JonkerVolgenant).unwrap();
        let sg = iso.align_with(&inst.source, &inst.target, AssignmentMethod::SortGreedy).unwrap();
        jv_total += graphalign_metrics::accuracy(&jv, &inst.ground_truth);
        sg_total += graphalign_metrics::accuracy(&sg, &inst.ground_truth);
    }
    assert!(
        jv_total >= sg_total - 0.05,
        "JV should not lose to SortGreedy: {jv_total} vs {sg_total}"
    );
}

/// The subgraph-alignment extension: embed a partial crawl (90% of nodes)
/// into the full network. One-to-one solvers handle the rectangular case by
/// construction. (Node removal is the harshest perturbation in the study's
/// taxonomy — removing 10% of nodes strips every surviving neighborhood —
/// so the quality bar is "clearly better than chance", not "high".)
#[test]
fn subgraph_alignment_end_to_end() {
    use graphalign_noise::make_subgraph_instance;
    let g = gen::powerlaw_cluster(120, 5, 0.6, 51);
    let inst = make_subgraph_instance(&g, 0.9, 52);
    assert!(inst.source.node_count() < inst.target.node_count());
    let iso = graphalign::isorank::IsoRank::default();
    let alignment =
        iso.align_with(&inst.source, &inst.target, AssignmentMethod::JonkerVolgenant).unwrap();
    assert_eq!(alignment.len(), inst.source.node_count());
    // Injective into the larger target.
    let mut seen = std::collections::HashSet::new();
    for &v in &alignment {
        assert!(v < inst.target.node_count());
        assert!(seen.insert(v));
    }
    // Clearly better than chance (chance ≈ 1/120 ≈ 0.8%).
    let acc = graphalign_metrics::accuracy(&alignment, &inst.ground_truth);
    assert!(acc > 0.1, "subgraph alignment accuracy {acc}");
}

/// accuracy@k on a real similarity matrix is monotone in k and consistent
/// with argmax accuracy at k = 1 under NN extraction.
#[test]
fn accuracy_at_k_integrates_with_similarities() {
    use graphalign_metrics::accuracy_at_k;
    let g = gen::powerlaw_cluster(60, 4, 0.5, 61);
    let inst = AlignmentInstance::permuted(g, 62);
    let grasp = graphalign::grasp::Grasp { q: 30, ..Default::default() };
    // GRASP emits a factored similarity; densify once for the top-k scan.
    let sim = grasp.similarity(&inst.source, &inst.target).unwrap().into_dense();
    let m = sim.cols();
    let a1 = accuracy_at_k(sim.as_slice(), m, &inst.ground_truth, 1);
    let a5 = accuracy_at_k(sim.as_slice(), m, &inst.ground_truth, 5);
    let a_all = accuracy_at_k(sim.as_slice(), m, &inst.ground_truth, m);
    assert!(a1 <= a5 && a5 <= a_all);
    assert_eq!(a_all, 1.0);
    assert!(a5 > 0.5, "top-5 accuracy {a5}");
}
