//! End-to-end tests of the serving layer: upload a graph pair over HTTP,
//! run the same query cold and warm, and verify the warm run is served from
//! the keyed similarity cache — `cache_hits: 1` in the response telemetry,
//! no `"similarity"` phase span, and a mapping bit-identical to the cold
//! run — then shut the server down cleanly.

use graphalign_json::Json;
use graphalign_serve::{http, start, ServeConfig};
use std::time::Duration;

fn post(addr: &str, path: &str, body: &[u8]) -> Json {
    let resp = http::request(addr, "POST", path, body).expect("request");
    assert_eq!(resp.status, 200, "POST {path}: {}", resp.body);
    resp.json()
}

fn upload(addr: &str, g: &graphalign_graph::Graph) -> String {
    let mut text = Vec::new();
    graphalign_graph::io::write_edge_list(g, &mut text).expect("serialize");
    post(addr, "/graphs", &text).get("id").and_then(Json::as_str).expect("graph id").to_string()
}

fn wait_done(addr: &str, id: usize) -> Json {
    for _ in 0..60_000 {
        let resp = http::request(addr, "GET", &format!("/jobs/{id}"), b"").expect("poll");
        assert_eq!(resp.status, 200, "{}", resp.body);
        let body = resp.json();
        match body.get("status").and_then(Json::as_str).expect("status") {
            "queued" | "running" => std::thread::sleep(Duration::from_millis(1)),
            "done" => return body,
            other => panic!("job {id} ended as {other}: {}", resp.body),
        }
    }
    panic!("job {id} never finished");
}

fn submit(addr: &str, src: &str, tgt: &str, algorithm: &str, assignment: &str) -> usize {
    let body = format!(
        "{{\"source\":{src:?},\"target\":{tgt:?},\"algorithm\":{algorithm:?},\"assignment\":{assignment:?}}}"
    );
    post(addr, "/jobs", body.as_bytes()).get("job").and_then(Json::as_f64).expect("job id") as usize
}

fn ops_counter(body: &Json, name: &str) -> u64 {
    body.get("telemetry")
        .and_then(|t| t.get("ops"))
        .and_then(|o| o.get(name))
        .and_then(Json::as_f64)
        .unwrap_or(0.0) as u64
}

fn has_phase(body: &Json, name: &str) -> bool {
    body.get("telemetry").and_then(|t| t.get("phases")).and_then(|p| p.get(name)).is_some()
}

fn test_pair() -> (graphalign_graph::Graph, graphalign_graph::Graph) {
    let source = graphalign_gen::powerlaw_cluster(80, 3, 0.3, 11);
    let instance = graphalign_noise::make_instance(
        &source,
        &graphalign_noise::NoiseConfig::new(graphalign_noise::NoiseModel::OneWay, 0.02),
        12,
    );
    (source, instance.target)
}

#[test]
fn warm_queries_skip_the_similarity_phase_for_embedding_algorithms() {
    let server = start(ServeConfig::default()).expect("start");
    let addr = server.addr().to_string();
    let (source, target) = test_pair();
    let src = upload(&addr, &source);
    let tgt = upload(&addr, &target);

    // The acceptance set: every embedding-family algorithm the issue names.
    for algorithm in ["REGAL", "CONE", "GRASP", "LREA"] {
        let cold = wait_done(&addr, submit(&addr, &src, &tgt, algorithm, "nn"));
        assert_eq!(ops_counter(&cold, "cache_misses"), 1, "{algorithm} cold run misses");
        assert_eq!(ops_counter(&cold, "cache_hits"), 0, "{algorithm}");
        assert!(has_phase(&cold, "similarity"), "{algorithm} cold run computes");

        let warm = wait_done(&addr, submit(&addr, &src, &tgt, algorithm, "nn"));
        assert_eq!(ops_counter(&warm, "cache_hits"), 1, "{algorithm} warm run hits");
        assert_eq!(ops_counter(&warm, "cache_misses"), 0, "{algorithm}");
        assert!(ops_counter(&warm, "cache_bytes") > 0, "{algorithm}");
        assert!(
            !has_phase(&warm, "similarity"),
            "{algorithm} warm run must skip the similarity phase entirely"
        );
        assert!(has_phase(&warm, "assignment"), "{algorithm} still assigns");
        assert_eq!(
            warm.get("mapping"),
            cold.get("mapping"),
            "{algorithm}: warm mapping must be bit-identical to cold"
        );
    }

    let stats = http::request(&addr, "GET", "/stats", b"").expect("stats").json();
    let cache = stats.get("cache").expect("cache block");
    assert_eq!(cache.get("hits").and_then(Json::as_f64), Some(4.0));
    assert_eq!(cache.get("misses").and_then(Json::as_f64), Some(4.0));

    server.shutdown();
    server.wait();
}

#[test]
fn warm_hits_survive_across_assignment_methods_and_respect_auction_variant() {
    let server = start(ServeConfig::default()).expect("start");
    let addr = server.addr().to_string();
    let (source, target) = test_pair();
    let src = upload(&addr, &source);
    let tgt = upload(&addr, &target);

    let cold = wait_done(&addr, submit(&addr, &src, &tgt, "REGAL", "jv"));
    assert_eq!(ops_counter(&cold, "cache_misses"), 1);
    // A different (non-auction) method reuses the same cached similarity.
    let warm = wait_done(&addr, submit(&addr, &src, &tgt, "REGAL", "sg"));
    assert_eq!(ops_counter(&warm, "cache_hits"), 1, "generic methods share one entry");
    // Auction may use a different representation, so it gets its own slot.
    let auction = wait_done(&addr, submit(&addr, &src, &tgt, "REGAL", "mwm"));
    assert_eq!(ops_counter(&auction, "cache_misses"), 1, "auction variant is keyed apart");

    server.shutdown();
    server.wait();
}

#[test]
fn uploading_the_same_structure_twice_reuses_the_graph_id() {
    let server = start(ServeConfig::default()).expect("start");
    let addr = server.addr().to_string();
    let g = graphalign_gen::powerlaw_cluster(40, 3, 0.3, 5);
    let id1 = upload(&addr, &g);
    let id2 = upload(&addr, &g);
    assert_eq!(id1, id2, "content digest collapses identical uploads");
    server.shutdown();
    server.wait();
}

#[test]
fn bad_requests_get_400s_and_unknown_jobs_404() {
    let server = start(ServeConfig::default()).expect("start");
    let addr = server.addr().to_string();
    let bad = http::request(&addr, "POST", "/jobs", b"{\"source\":\"x\"}").expect("request");
    assert_eq!(bad.status, 400, "{}", bad.body);
    let missing = http::request(&addr, "GET", "/jobs/999", b"").expect("request");
    assert_eq!(missing.status, 404);
    let nowhere = http::request(&addr, "GET", "/nope", b"").expect("request");
    assert_eq!(nowhere.status, 404);
    server.shutdown();
    server.wait();
}

#[test]
fn healthz_is_ready_and_clean_jobs_carry_no_error_metadata() {
    let server = start(ServeConfig::default()).expect("start");
    let addr = server.addr().to_string();

    let health = http::request(&addr, "GET", "/healthz", b"").expect("healthz");
    assert_eq!(health.status, 200, "{}", health.body);
    let body = health.json();
    assert_eq!(body.get("status").and_then(Json::as_str), Some("ready"));
    assert_eq!(body.get("cache_integrity_ok").and_then(Json::as_bool), Some(true));

    let (source, target) = test_pair();
    let src = upload(&addr, &source);
    let tgt = upload(&addr, &target);
    let done = wait_done(&addr, submit(&addr, &src, &tgt, "REGAL", "nn"));
    // A first-try success is reported without retry or failure metadata.
    assert_eq!(
        done.get("attempts").and_then(Json::as_f64),
        Some(1.0),
        "clean job must succeed on its single attempt"
    );
    assert!(done.get("error_class").is_none(), "clean job must not carry an error class");

    let health = http::request(&addr, "GET", "/healthz", b"").expect("healthz");
    assert_eq!(health.status, 200, "still ready after serving work: {}", health.body);

    let stats = http::request(&addr, "GET", "/stats", b"").expect("stats").json();
    let resilience = stats.get("resilience").expect("resilience block");
    for counter in ["retries", "panics_contained", "rejected_429"] {
        assert_eq!(
            resilience.get(counter).and_then(Json::as_f64),
            Some(0.0),
            "{counter} must stay zero on a clean run"
        );
    }

    server.shutdown();
    server.wait();
}

#[test]
fn a_tiny_timeout_reports_timeout_not_success() {
    let server = start(ServeConfig::default()).expect("start");
    let addr = server.addr().to_string();
    let (source, target) = test_pair();
    let src = upload(&addr, &source);
    let tgt = upload(&addr, &target);
    let body = format!(
        "{{\"source\":{src:?},\"target\":{tgt:?},\"algorithm\":\"IsoRank\",\
         \"assignment\":\"nn\",\"timeout\":1e-6}}"
    );
    let id =
        post(&addr, "/jobs", body.as_bytes()).get("job").and_then(Json::as_f64).unwrap() as usize;
    let final_status = loop {
        let resp = http::request(&addr, "GET", &format!("/jobs/{id}"), b"").expect("poll");
        let bodyj = resp.json();
        let status = bodyj.get("status").and_then(Json::as_str).unwrap().to_string();
        if status != "queued" && status != "running" {
            break status;
        }
        std::thread::sleep(Duration::from_millis(1));
    };
    assert_eq!(final_status, "timeout");
    server.shutdown();
    server.wait();
}
