//! Paper-shape regression tests: qualitative findings of the study's §6
//! that this reproduction must preserve. Each test encodes one claim from
//! the paper's text, averaged over seeds so the assertions are stable.

use graphalign::{AlignError, Aligner};
use graphalign_assignment::AssignmentMethod;
use graphalign_gen as gen;
use graphalign_graph::Graph;
use graphalign_metrics::accuracy;
use graphalign_noise::{make_instance, NoiseConfig, NoiseModel};

fn mean_accuracy(
    aligner: &dyn Aligner,
    graph: &Graph,
    model: NoiseModel,
    level: f64,
    seeds: std::ops::Range<u64>,
) -> Result<f64, AlignError> {
    let mut total = 0.0;
    let count = seeds.end - seeds.start;
    for seed in seeds {
        let inst = make_instance(graph, &NoiseConfig::new(model, level), seed);
        let a =
            aligner.align_with(&inst.source, &inst.target, AssignmentMethod::JonkerVolgenant)?;
        total += accuracy(&a, &inst.ground_truth);
    }
    Ok(total / count as f64)
}

/// §6.3, LREA: "consistently finds the correct alignment on graphs with no
/// noise ... Yet, the performance drops close to 0 on graphs with only 1%
/// noise."
#[test]
fn lrea_cliff_at_one_percent_noise() {
    let g = gen::erdos_renyi(250, 0.04, 3);
    let lrea = graphalign::lrea::Lrea::default();
    let clean = mean_accuracy(&lrea, &g, NoiseModel::OneWay, 0.0, 0..2).unwrap();
    let noisy = mean_accuracy(&lrea, &g, NoiseModel::OneWay, 0.02, 0..2).unwrap();
    assert!(clean > 0.75, "LREA clean accuracy {clean}");
    assert!(noisy < 0.35, "LREA at 2% noise should collapse, got {noisy}");
    assert!(clean - noisy > 0.5, "the LREA cliff must be steep: {clean} -> {noisy}");
}

/// §6.3, GWL: "exhibits good performance only on powerlaw graphs ... On
/// other graph types GWL fails to find the correct alignment, scoring close
/// to 0 in all measures even with low noise levels."
#[test]
fn gwl_only_works_on_powerlaw() {
    let gwl = graphalign::gwl::Gwl::default();
    let ba = gen::barabasi_albert(200, 5, 7);
    let ws = gen::watts_strogatz(200, 10, 0.5, 7);
    let on_ba = mean_accuracy(&gwl, &ba, NoiseModel::OneWay, 0.0, 0..2).unwrap();
    let on_ws = mean_accuracy(&gwl, &ws, NoiseModel::OneWay, 0.0, 0..2).unwrap();
    assert!(on_ba > 0.4, "GWL on BA: {on_ba}");
    assert!(on_ws < 0.1, "GWL should fail on WS: {on_ws}");
}

/// §6.3, S-GWL: "Although approximating GWL, S-GWL is competitive in most
/// datasets" — in particular it beats GWL off the power-law regime.
#[test]
fn sgwl_beats_gwl_off_powerlaw() {
    let ws = gen::watts_strogatz(200, 10, 0.5, 11);
    let gwl = mean_accuracy(&graphalign::gwl::Gwl::default(), &ws, NoiseModel::OneWay, 0.0, 0..2)
        .unwrap();
    let sgwl =
        mean_accuracy(&graphalign::sgwl::Sgwl::default(), &ws, NoiseModel::OneWay, 0.0, 0..2)
            .unwrap();
    assert!(sgwl > gwl + 0.2, "S-GWL ({sgwl}) must clearly beat GWL ({gwl}) on WS");
}

/// §6.3, CONE: "performs well on all graph models, returning nearly perfect
/// alignments in nearly all models" (zero-noise check on three families).
#[test]
fn cone_near_perfect_across_models() {
    let cone = graphalign::cone::Cone { outer_iters: 15, ..Default::default() };
    for (name, g) in [
        ("ER", gen::erdos_renyi(250, 0.04, 13)),
        ("WS", gen::watts_strogatz(250, 10, 0.5, 13)),
        ("BA", gen::barabasi_albert(250, 5, 13)),
    ] {
        let acc = mean_accuracy(&cone, &g, NoiseModel::OneWay, 0.0, 0..2).unwrap();
        assert!(acc > 0.85, "CONE on {name}: {acc}");
    }
}

/// §6.3, IsoRank noise sensitivity: "for multi-modal and two-way noise
/// accuracy drops by 10-30%" relative to one-way — the harsher noise types
/// must not score *better*.
#[test]
fn isorank_noise_type_ordering() {
    let g = gen::powerlaw_cluster(250, 5, 0.5, 17);
    let iso = graphalign::isorank::IsoRank::default();
    let one_way = mean_accuracy(&iso, &g, NoiseModel::OneWay, 0.04, 0..3).unwrap();
    let multi = mean_accuracy(&iso, &g, NoiseModel::MultiModal, 0.04, 0..3).unwrap();
    assert!(
        one_way >= multi - 0.05,
        "multi-modal noise should hurt IsoRank at least as much: {one_way} vs {multi}"
    );
}

/// §6.1: the degree-prior weighting is what makes IsoRank "a formidable
/// competitor" — the uniform-prior variant must not beat it under noise.
#[test]
fn isorank_prior_ablation_shape() {
    let g = gen::powerlaw_cluster(200, 5, 0.5, 19);
    let with_prior =
        mean_accuracy(&graphalign::isorank::IsoRank::default(), &g, NoiseModel::OneWay, 0.03, 0..3)
            .unwrap();
    let without = mean_accuracy(
        &graphalign::isorank::IsoRank::without_degree_prior(),
        &g,
        NoiseModel::OneWay,
        0.03,
        0..3,
    )
    .unwrap();
    assert!(
        with_prior >= without - 0.05,
        "degree prior should not hurt: {with_prior} vs {without}"
    );
}

/// §6.4.1, GRASP and disconnection: GRASP's failure mode is noise that
/// fragments the *target* differently from the source — "GRASP falters on
/// graphs with several connected components, which may arise if the random
/// edge removals disconnect the graph". On a fragile sparse graph, noise
/// that disconnects must hurt GRASP much more than the same noise on a
/// robust dense graph.
#[test]
fn grasp_suffers_when_noise_disconnects() {
    let grasp = graphalign::grasp::Grasp { q: 50, ..Default::default() };
    // Robust: WS with degree 10 survives 5% removals connected.
    let robust = gen::watts_strogatz(240, 10, 0.3, 23);
    // Fragile: a ring of degree 2 fragments under any removal.
    let fragile = Graph::from_edges(240, &(0..240).map(|i| (i, (i + 1) % 240)).collect::<Vec<_>>());
    let on_robust = mean_accuracy(&grasp, &robust, NoiseModel::OneWay, 0.05, 0..2).unwrap();
    let on_fragile = mean_accuracy(&grasp, &fragile, NoiseModel::OneWay, 0.05, 0..2).unwrap();
    assert!(
        on_robust > on_fragile + 0.2,
        "disconnecting noise must hurt GRASP disproportionately: robust {on_robust} vs fragile {on_fragile}"
    );
}
