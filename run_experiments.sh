#!/bin/bash
# Runs every table/figure regenerator in quick mode, teeing plain-text and
# JSON outputs into results/. Pass --full to run the paper-scale grid.
set -u
MODE="${1:---quick}"
BINS="table1 table2 fig1_assignment fig2_er fig3_ba fig4_ws fig5_nw fig6_pl \
fig7_real_low_noise fig8_real_high_noise fig9_time_accuracy fig10_real_noise \
fig11_scal_nodes fig12_scal_degree fig13_mem_nodes fig14_mem_degree \
fig15_density fig16_size table3"
for bin in $BINS; do
  echo "=== running $bin $MODE ==="
  cargo run -q --release -p graphalign-bench --bin "$bin" -- "$MODE" \
    --out "results/$bin.json" > "results/$bin.txt" 2>&1
  echo "    exit=$? ($(wc -l < results/$bin.txt) lines)"
done
echo "all experiments done"
